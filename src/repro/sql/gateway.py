"""The database gateway facade the macro engine talks to.

Figure 5 of the paper shows DB2WWW between the web server and "DB2
databases on a wide variety of IBM and non-IBM platforms".  The engine
does not care which database a macro targets; it resolves the macro's
``DATABASE`` variable against a :class:`DatabaseRegistry` and runs
statements through a :class:`MacroSqlSession` that enforces the chosen
transaction mode.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Iterator, Optional

from repro.errors import SQLError, SQLObjectError
from repro.sql.connection import Connection, MemoryDatabase
from repro.sql.cursor import Cursor, value_to_text
from repro.sql.dialect import is_cacheable_query, is_query
from repro.sql.querycache import QueryResultCache, WriteGeneration
from repro.sql.transactions import TransactionMode, TransactionScope


@dataclass
class ExecutionResult:
    """The outcome of executing one SQL statement.

    For queries, ``columns`` carries the result column names and ``rows``
    the fetched data (the report generator consumed rows one at a time in
    1996; we fetch eagerly inside the statement's transaction bracket so a
    later rollback cannot invalidate an open cursor mid-report).
    """

    sql: str
    columns: list[str] = field(default_factory=list)
    rows: list[tuple[Any, ...]] = field(default_factory=list)
    rowcount: int = 0
    is_query: bool = False

    def iter_text_rows(self) -> Iterator[list[str]]:
        """Rows with every value rendered to gateway text form."""
        for row in self.rows:
            yield [value_to_text(value) for value in row]

    @property
    def row_total(self) -> int:
        return len(self.rows)


class DatabaseRegistry:
    """Named databases available to macros.

    A macro names its database with ``%DEFINE DATABASE = "..."`` (as in
    Appendix A: ``DATABASE="CELDIAL"``).  Applications register either a
    filesystem path, a :class:`MemoryDatabase`, or a connection factory
    under that name.
    """

    def __init__(self) -> None:
        self._factories: dict[str, Callable[[], Connection]] = {}
        self._generations: dict[str, WriteGeneration] = {}

    def register_path(self, name: str, path: str) -> None:
        self._factories[name] = lambda: Connection(path)

    def register_memory(self, name: str,
                        db: Optional[MemoryDatabase] = None) -> MemoryDatabase:
        if db is None:
            db = MemoryDatabase()
        self._factories[name] = db.connect
        # Adopt the database's own counter so writes through connections
        # opened directly (db.connect()) invalidate cached results too.
        self._generations[name] = db.generation
        return db

    def register_factory(self, name: str,
                         factory: Callable[[], Connection]) -> None:
        self._factories[name] = factory

    def __contains__(self, name: str) -> bool:
        return name in self._factories

    def names(self) -> list[str]:
        return sorted(self._factories)

    def generation(self, name: str) -> WriteGeneration:
        """The write-generation counter of one registered database."""
        counter = self._generations.get(name)
        if counter is None:
            counter = self._generations[name] = WriteGeneration()
        return counter

    def connect(self, name: str) -> Connection:
        factory = self._factories.get(name)
        if factory is None:
            raise SQLObjectError(
                f"database {name!r} is not registered with the gateway",
                sqlstate="08001")
        connection = factory()
        if connection.generation is None:
            connection.generation = self.generation(name)
        return connection


class MacroSqlSession:
    """All SQL activity of one macro invocation.

    Owns a connection for the duration of the request and a
    :class:`TransactionScope` implementing Section 5's two modes.  The
    engine calls :meth:`execute` once per ``%EXEC_SQL``-triggered SQL
    section and :meth:`finish` when report processing ends.
    """

    def __init__(self, connection: Connection, *,
                 mode: TransactionMode = TransactionMode.AUTO_COMMIT,
                 owns_connection: bool = True,
                 cache: Optional[QueryResultCache] = None,
                 database: str = "",
                 generation: Optional[WriteGeneration] = None):
        self.connection = connection
        self.scope = TransactionScope(connection, mode)
        self._owns_connection = owns_connection
        self.statement_log: list[str] = []
        #: Optional shared SELECT-result cache (see repro.sql.querycache).
        #: Only consulted in auto-commit mode and only when a write
        #: generation is available; ``database`` scopes the cache keys.
        self.cache = cache
        self.database = database
        self.generation = generation if generation is not None \
            else connection.generation
        #: Cache hits served by this session (request-level observability).
        self.cache_hits = 0

    def execute(self, sql: str) -> ExecutionResult:
        """Run one dynamically assembled SQL statement.

        Raises :class:`SQLError` on failure *after* recording it with the
        transaction scope (so single-mode rollback happens before the
        engine sees the exception).

        When a query cache is attached (and usable — auto-commit mode,
        pure-read statement (``SELECT``/``VALUES``/``WITH``; PRAGMA and
        EXPLAIN always re-execute), generation counter present), an
        unexpired cached result is returned without touching the
        database; a fresh result is stored under the generation stamp
        observed *before* execution, so a concurrent write can only make
        the entry stale, never wrong.
        """
        self.statement_log.append(sql)
        use_cache = (self.cache is not None
                     and self.generation is not None
                     and self.scope.mode is not TransactionMode.SINGLE
                     and is_cacheable_query(sql))
        if use_cache:
            stamp = self.generation.stamp()
            cached = self.cache.get(self.database, sql, stamp)
            if cached is not None:
                self.cache_hits += 1
                self.scope.statements_run += 1  # counted, not bracketed
                return cached
        self.scope.before_statement()
        try:
            cursor = self.connection.execute(sql)
        except SQLError as exc:
            self.scope.after_statement(exc)
            raise
        result = self._drain(cursor, sql)
        self.scope.after_statement(None)
        if use_cache and result.is_query:
            self.cache.put(self.database, sql, stamp, result)
        return result

    @staticmethod
    def _drain(cursor: Cursor, sql: str) -> ExecutionResult:
        if cursor.has_result_set:
            rows = cursor.fetchall()
            return ExecutionResult(
                sql=sql, columns=cursor.column_names, rows=rows,
                rowcount=len(rows), is_query=True)
        return ExecutionResult(
            sql=sql, rowcount=max(cursor.rowcount, 0),
            is_query=is_query(sql))

    @property
    def failed(self) -> bool:
        return self.scope.failed

    def finish(self, success: bool = True) -> None:
        self.scope.finish(success)
        if self._owns_connection:
            self.connection.close()

    def __enter__(self) -> "MacroSqlSession":
        return self

    def __exit__(self, exc_type, _exc, _tb) -> None:
        self.finish(success=exc_type is None)
