"""The database gateway facade the macro engine talks to.

Figure 5 of the paper shows DB2WWW between the web server and "DB2
databases on a wide variety of IBM and non-IBM platforms".  The engine
does not care which database a macro targets; it resolves the macro's
``DATABASE`` variable against a :class:`DatabaseRegistry` and runs
statements through a :class:`MacroSqlSession` that enforces the chosen
transaction mode.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable, Iterator, Optional

from repro.errors import (SQLConnectError, SQLError, SQLObjectError,
                          is_transient)
from repro.obs.trace import TRACER
from repro.resilience import faults as fault_injection
from repro.resilience.breaker import CircuitBreaker
from repro.resilience.deadline import Deadline
from repro.resilience.retry import DEFAULT_RETRY, RetryPolicy
from repro.sql.connection import Connection, MemoryDatabase
from repro.sql.cursor import Cursor, value_to_text
from repro.sql.digest import statement_digest
from repro.sql.dialect import is_cacheable_query, is_query
from repro.sql.pool import ConnectionPool
from repro.sql.querycache import QueryResultCache, WriteGeneration
from repro.sql.transactions import TransactionMode, TransactionScope

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sql.sharding import ShardMap


@dataclass
class ExecutionResult:
    """The outcome of executing one SQL statement.

    For queries, ``columns`` carries the result column names and ``rows``
    the fetched data (the report generator consumed rows one at a time in
    1996; we fetch eagerly inside the statement's transaction bracket so a
    later rollback cannot invalidate an open cursor mid-report).

    A *streaming* result (``row_iter`` set) carries no materialised
    ``rows``: the rows come straight off the live cursor, one at a time,
    and may be consumed exactly once.  ``rows_fetched`` counts them as
    they pass, so :attr:`row_total` is correct after exhaustion — which
    is the only point the report machinery reads it (``ROW_NUM`` /
    ``ROWCOUNT`` are footer-time variables).
    """

    sql: str
    columns: list[str] = field(default_factory=list)
    rows: list[tuple[Any, ...]] = field(default_factory=list)
    rowcount: int = 0
    is_query: bool = False
    #: Live-cursor row source for streaming execution; ``None`` for the
    #: (default) eager result.  Single-use.
    row_iter: Optional[Iterator[tuple[Any, ...]]] = None
    #: Rows that have passed through ``row_iter`` so far.
    rows_fetched: int = 0
    #: True when a sharded scatter-gather lost one or more shards and
    #: degradation kept the survivors (see repro.sql.sharding).  Partial
    #: results are never cached.
    partial: bool = False
    #: Labels of the shards whose rows are missing from a partial result.
    failed_shards: tuple[str, ...] = ()

    @property
    def streaming(self) -> bool:
        return self.row_iter is not None

    def iter_rows(self) -> Iterator[tuple[Any, ...]]:
        """The result rows, eager or streaming (single-use when streaming)."""
        if self.row_iter is not None:
            return self.row_iter
        return iter(self.rows)

    def iter_text_rows(self) -> Iterator[list[str]]:
        """Rows with every value rendered to gateway text form."""
        for row in self.iter_rows():
            yield [value_to_text(value) for value in row]

    @property
    def row_total(self) -> int:
        if self.row_iter is not None:
            return self.rows_fetched
        return len(self.rows)


class DatabaseRegistry:
    """Named databases available to macros.

    A macro names its database with ``%DEFINE DATABASE = "..."`` (as in
    Appendix A: ``DATABASE="CELDIAL"``).  Applications register either a
    filesystem path, a :class:`MemoryDatabase`, or a connection factory
    under that name.

    The registry is also where the resilience layer attaches to the
    request path: :meth:`inject_faults` wraps every factory in the fault
    harness, and :meth:`enable_breakers` puts a circuit breaker in front
    of each database so an unreachable backend fails fast
    (:class:`~repro.errors.CircuitOpenError`, surfaced by the HTTP layer
    as 503 + ``Retry-After``) instead of paying the connect cost — and
    holding a pool slot — on every request.
    """

    def __init__(self) -> None:
        self._factories: dict[str, Callable[[], Connection]] = {}
        self._generations: dict[str, WriteGeneration] = {}
        self._pools: dict[str, ConnectionPool] = {}
        #: Guards lazy pool creation: two concurrent first requests to
        #: one shard must share a pool, not leak one.
        self._pools_lock = threading.Lock()
        #: When set, every database gets a pool lazily on first connect
        #: (see :meth:`enable_pools`); ``None`` keeps pools explicit.
        self._pool_config: Optional[dict[str, float]] = None
        self._shard_maps: dict[str, "ShardMap"] = {}
        self._breakers: dict[str, CircuitBreaker] = {}
        self._breaker_config: Optional[dict[str, float]] = None
        self._injector: Optional[fault_injection.FaultInjector] = None
        self._retries = 0
        self._retry_lock = threading.Lock()
        #: Open connections per database name; :meth:`unregister`
        #: refuses while a database is in use (SQLSTATE 55006).
        self._active: dict[str, int] = {}
        self._active_lock = threading.Lock()
        self._closed = False

    def _reject_sharded_name(self, name: str) -> None:
        """Physical registration must not shadow a sharded logical name.

        The mirror image of :meth:`register_sharded`'s check: the engine
        resolves shard maps first, so a physical database registered
        under an existing logical name would be silently unreachable.
        """
        if name in self._shard_maps:
            raise SQLObjectError(
                f"database {name!r} is already registered as a sharded "
                "logical database; a physical name must be distinct",
                sqlstate="42710")

    def register_path(self, name: str, path: str) -> None:
        self._reject_sharded_name(name)
        self._factories[name] = lambda: Connection(path)

    def register_memory(self, name: str,
                        db: Optional[MemoryDatabase] = None) -> MemoryDatabase:
        self._reject_sharded_name(name)
        if db is None:
            db = MemoryDatabase()
        self._factories[name] = db.connect
        # Adopt the database's own counter so writes through connections
        # opened directly (db.connect()) invalidate cached results too.
        self._generations[name] = db.generation
        return db

    def register_factory(self, name: str,
                         factory: Callable[[], Connection]) -> None:
        self._reject_sharded_name(name)
        self._factories[name] = factory

    def register_sharded(self, name: str, shard_map: "ShardMap") -> None:
        """Make ``name`` a *logical* sharded database.

        A macro whose ``DATABASE`` resolves to ``name`` routes through
        the map (see :mod:`repro.sql.sharding`); the map's shard and
        replica databases must each be registered here as ordinary
        physical databases — pools, breakers and fault injection attach
        per endpoint exactly as before.
        """
        if name in self._factories:
            raise SQLObjectError(
                f"database {name!r} is already registered as a physical "
                "database; a sharded logical name must be distinct",
                sqlstate="42710")
        shard_map.validate()
        for shard in shard_map.shards:
            for endpoint in (shard.database,
                             *(r.database for r in shard.replicas)):
                if endpoint not in self._factories:
                    raise SQLObjectError(
                        f"shard map {name!r} names unregistered database "
                        f"{endpoint!r}", sqlstate="08001")
        self._shard_maps[name] = shard_map

    def unregister(self, name: str, *,
                   cache: Optional[QueryResultCache] = None) -> None:
        """Remove a registered database (or sharded logical name).

        Deleting a tenant's database must leave *nothing* behind that a
        later registration under the same name could inherit:

        * the connection pool is closed (its warm connections point at
          the old backend);
        * the write-generation counter is dropped, so a recreated name
          mints a fresh counter identity — cached results stored under
          the old counter's stamps can never match again;
        * when ``cache`` is given, the name's query-cache namespace is
          purged eagerly (the stamp mismatch already makes the entries
          unservable; purging reclaims their memory now).

        Refuses with SQLSTATE 55006 ("object in use") while connections
        to the database are still open — an active session holds
        transaction state the teardown would yank out from under it.
        """
        if name not in self._factories and name not in self._shard_maps:
            raise SQLObjectError(
                f"database {name!r} is not registered with the gateway",
                sqlstate="08001")
        with self._active_lock:
            active = self._active.get(name, 0)
            if active:
                raise SQLObjectError(
                    f"database {name!r} has {active} active "
                    "connection(s); close them before unregistering",
                    sqlstate="55006")
        with self._pools_lock:
            pool = self._pools.pop(name, None)
        if pool is not None:
            pool.close()
        self._factories.pop(name, None)
        self._shard_maps.pop(name, None)
        self._generations.pop(name, None)
        self._breakers.pop(name, None)
        if cache is not None:
            cache.invalidate_database(name)

    def active_connections(self, name: str) -> int:
        """Open connections to ``name`` right now (leased or direct)."""
        with self._active_lock:
            return self._active.get(name, 0)

    def _retain(self, name: str) -> None:
        with self._active_lock:
            self._active[name] = self._active.get(name, 0) + 1

    def _release_active(self, name: str) -> None:
        with self._active_lock:
            count = self._active.get(name, 0) - 1
            if count <= 0:
                self._active.pop(name, None)
            else:
                self._active[name] = count

    # -- name scoping ------------------------------------------------------

    def resolve(self, name: str) -> str:
        """The physical name a macro-level database name maps to.

        Identity here; :class:`ScopedDatabaseRegistry` overrides it to
        prefix the tenant namespace.  The engine keys query-cache
        entries by the *resolved* name, so two tenants registering the
        same database name can never share cache entries.
        """
        return name

    def physical(self) -> "DatabaseRegistry":
        """The underlying physical registry (self for the real one)."""
        return self

    def shard_map(self, name: str) -> Optional["ShardMap"]:
        """The shard map behind a logical name (``None`` if unsharded)."""
        return self._shard_maps.get(name)

    def shard_stats(self) -> dict[str, int]:
        """Merged routing counters of every registered shard map.

        Attached to the metrics registry as the ``shard`` stats source,
        so the keys render as ``shard_<counter>``.  With several maps
        the keys are prefixed by the (lowercased) logical name.
        """
        stats: dict[str, int] = {}
        prefixed = len(self._shard_maps) > 1
        for name, shard_map in self._shard_maps.items():
            prefix = f"{name.lower()}_" if prefixed else ""
            for key, value in shard_map.stats().items():
                stats[prefix + key] = stats.get(prefix + key, 0) + value
        return stats

    def shard_labeled_stats(self) -> dict[str, dict[str, int]]:
        """:meth:`shard_stats` grouped by shard for a labeled source.

        ``{shard_label: {counter: value}}``; the empty label holds the
        topology-wide counters.  Label values are chosen so the labeled
        source's legacy flattening (``shard_<label>_<counter>`` /
        ``shard_<counter>``) reproduces :meth:`shard_stats` exactly.
        """
        out: dict[str, dict[str, int]] = {}
        prefixed = len(self._shard_maps) > 1
        for name, shard_map in self._shard_maps.items():
            for value, bag in shard_map.labeled_stats().items():
                if prefixed:
                    value = (f"{name.lower()}_{value}" if value
                             else name.lower())
                dest = out.setdefault(value, {})
                for key, number in bag.items():
                    dest[key] = dest.get(key, 0) + number
        return out

    def attach_pool(self, name: str, *, size: int = 4,
                    timeout: float = 5.0) -> ConnectionPool:
        """Put a bounded :class:`ConnectionPool` in front of a database.

        Subsequent :meth:`connect` calls lease from the pool; the leased
        connection's ``close()`` releases it back (health-validated, so
        a connection that broke during the request is evicted).  Must be
        called after the database is registered.
        """
        factory = self._factories.get(name)
        if factory is None:
            raise SQLObjectError(
                f"database {name!r} is not registered with the gateway",
                sqlstate="08001")
        with self._pools_lock:
            if self._closed:
                raise SQLConnectError(
                    f"database registry is closed (pool for {name!r})",
                    sqlstate="08003")
            pool = self._pools.get(name)
            if pool is None:
                pool = self._pools[name] = ConnectionPool(
                    self._wrap(factory), size=size, timeout=timeout)
        return pool

    def enable_pools(self, *, size: int = 4, timeout: float = 5.0) -> None:
        """Pool every database *lazily*, on its first :meth:`connect`.

        The sharded tier registers primaries and replicas for every
        shard up front, but a request pinned to one shard touches one
        endpoint; eager pooling would hold ``size`` idle connections on
        every endpoint that never serves a request.  With lazy creation,
        an endpoint that served zero requests owns zero connections —
        and :meth:`close_all` has nothing of its to leak.
        """
        self._pool_config = {"size": size, "timeout": timeout}

    def pool(self, name: str) -> Optional[ConnectionPool]:
        return self._pools.get(name)

    def close_all(self) -> None:
        """Close every pool the registry created.  Idempotent.

        Only pools that exist are touched — with :meth:`enable_pools`'
        lazy creation that is exactly the set of endpoints that served
        at least one request.  After closing, :meth:`connect` refuses
        with SQLSTATE 08003 instead of silently re-opening pools.
        """
        with self._pools_lock:
            self._closed = True
            pools = list(self._pools.values())
        for pool in pools:
            pool.close()

    @property
    def closed(self) -> bool:
        return self._closed

    # -- resilience attachment -------------------------------------------

    def inject_faults(
            self,
            injector: fault_injection.FaultInjector | str | None) -> None:
        """Route every future connection through a fault injector.

        Accepts an injector, a spec string (see
        :mod:`repro.resilience.faults`), or ``None`` to stop injecting.
        Pools attached before this call keep their unwrapped factories;
        wire faults first when both are wanted.
        """
        if isinstance(injector, str):
            injector = fault_injection.FaultInjector.parse(injector)
        self._injector = injector

    def enable_breakers(self, *, failure_threshold: int = 5,
                        reset_timeout: float = 1.0) -> None:
        """Guard every database behind a per-database circuit breaker."""
        self._breaker_config = {"failure_threshold": failure_threshold,
                                "reset_timeout": reset_timeout}

    def breaker(self, name: str) -> Optional[CircuitBreaker]:
        """The breaker guarding ``name`` (``None`` unless enabled)."""
        if self._breaker_config is None:
            return None
        breaker = self._breakers.get(name)
        if breaker is None:
            breaker = self._breakers[name] = CircuitBreaker(
                name=name,
                failure_threshold=int(
                    self._breaker_config["failure_threshold"]),
                reset_timeout=self._breaker_config["reset_timeout"])
        return breaker

    def record_retries(self, count: int) -> None:
        """Fold one request's transparent retry count into the totals.

        The engine calls this as each macro run finishes, so the
        access log's ``resilience`` stats line shows cumulative retries
        next to the breaker and injector counters.
        """
        if count:
            with self._retry_lock:
                self._retries += count

    def resilience_stats(self) -> dict[str, int]:
        """Aggregated breaker/injector/pool counters for observability."""
        stats: dict[str, int] = {}
        with self._retry_lock:
            stats["retries"] = self._retries
        totals = {"opens": 0, "rejections": 0, "probes": 0}
        for breaker in self._breakers.values():
            for key, value in breaker.stats().items():
                if key in totals:
                    totals[key] += value
        for key, value in totals.items():
            stats[f"breaker_{key}"] = value
        if self._injector is not None:
            stats.update(self._injector.stats())
        stats["pool_evicted"] = sum(
            pool.stats["evicted"] for pool in self._pools.values())
        return stats

    # ---------------------------------------------------------------------

    def __contains__(self, name: str) -> bool:
        return name in self._factories or name in self._shard_maps

    def names(self) -> list[str]:
        return sorted((*self._factories, *self._shard_maps))

    def generation(self, name: str) -> WriteGeneration:
        """The write-generation counter of one registered database."""
        counter = self._generations.get(name)
        if counter is None:
            counter = self._generations[name] = WriteGeneration()
        return counter

    def connect(self, name: str, *,
                deadline: Optional[Deadline] = None) -> Connection:
        """Open (or lease) a connection to a registered database.

        Consults the database's circuit breaker first — when it is open
        this raises :class:`~repro.errors.CircuitOpenError` in
        microseconds, without touching factory, pool or network — and
        reports the connect outcome back to it.
        """
        factory = self._factories.get(name)
        if factory is None:
            raise SQLObjectError(
                f"database {name!r} is not registered with the gateway",
                sqlstate="08001")
        if self._closed:
            raise SQLConnectError(
                f"database registry is closed (connect to {name!r})",
                sqlstate="08003")
        breaker = self.breaker(name)
        if breaker is not None:
            breaker.allow()
        release = lambda: self._release_active(name)  # noqa: E731
        try:
            pool = self._pools.get(name)
            if pool is None and self._pool_config is not None:
                pool = self.attach_pool(
                    name, size=int(self._pool_config["size"]),
                    timeout=self._pool_config["timeout"])
            if pool is not None:
                connection = _LeasedConnection(
                    pool, pool.acquire(deadline=deadline),
                    on_close=release)
            else:
                connection = _TrackedConnection(self._wrap(factory)(),
                                                on_close=release)
        except BaseException:
            if breaker is not None:
                breaker.record_failure()
            raise
        if breaker is not None:
            breaker.record_success()
        if connection.generation is None:
            connection.generation = self.generation(name)
        self._retain(name)
        return connection

    def _wrap(self,
              factory: Callable[[], Connection]) -> Callable[[], Connection]:
        if self._injector is None:
            return factory
        return fault_injection.wrap_factory(factory, self._injector)


class _LeasedConnection:
    """A pooled connection whose ``close()`` releases the lease.

    The engine's session model closes its connection when the request
    finishes; with a pool attached, "close" means "give it back" — the
    pool health-validates it on the way in and evicts it if the request
    broke it.  ``on_close`` (when given) runs exactly once as the lease
    settles — the registry uses it to keep its active-connection count.
    """

    def __init__(self, pool: ConnectionPool, connection: Connection,
                 on_close: Optional[Callable[[], None]] = None):
        self._pool = pool
        self._conn = connection
        self._on_close = on_close
        self._released = False

    def close(self) -> None:
        if not self._released:
            self._released = True
            try:
                self._pool.release(self._conn)
            finally:
                if self._on_close is not None:
                    self._on_close()

    @property
    def closed(self) -> bool:
        return self._released or self._conn.closed

    @property
    def generation(self):
        return self._conn.generation

    @generation.setter
    def generation(self, value) -> None:
        self._conn.generation = value

    def __getattr__(self, name: str):
        return getattr(self._conn, name)

    def __enter__(self) -> "_LeasedConnection":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


class _TrackedConnection:
    """An unpooled connection counted against its database's actives."""

    def __init__(self, connection: Connection,
                 on_close: Callable[[], None]):
        self._conn = connection
        self._on_close = on_close
        self._settled = False

    def close(self) -> None:
        if not self._settled:
            self._settled = True
            try:
                self._conn.close()
            finally:
                self._on_close()

    @property
    def closed(self) -> bool:
        return self._settled or self._conn.closed

    @property
    def generation(self):
        return self._conn.generation

    @generation.setter
    def generation(self, value) -> None:
        self._conn.generation = value

    def __getattr__(self, name: str):
        return getattr(self._conn, name)

    def __enter__(self) -> "_TrackedConnection":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


class ScopedDatabaseRegistry:
    """A tenant's view of a shared :class:`DatabaseRegistry`.

    Every name is transparently prefixed with the tenant namespace
    (``tenantA/SHOP``), so two tenants may both register ``SHOP``
    without sharing a backend, a pool, a write-generation counter — or,
    because the engine keys its query cache by :meth:`resolve`'d names,
    a single cached row.  Pools, breakers and fault injection stay on
    the parent, attached per *physical* (scoped) name.
    """

    SEPARATOR = "/"

    def __init__(self, parent: DatabaseRegistry, namespace: str):
        if not namespace or self.SEPARATOR in namespace:
            raise ValueError(
                f"bad registry namespace {namespace!r}: must be a "
                f"non-empty name without {self.SEPARATOR!r}")
        self.parent = parent
        self.namespace = namespace

    def resolve(self, name: str) -> str:
        return f"{self.namespace}{self.SEPARATOR}{name}"

    def physical(self) -> DatabaseRegistry:
        return self.parent

    # -- registration (scoped) --------------------------------------------

    def register_path(self, name: str, path: str) -> None:
        self.parent.register_path(self.resolve(name), path)

    def register_memory(self, name: str,
                        db: Optional[MemoryDatabase] = None
                        ) -> MemoryDatabase:
        return self.parent.register_memory(self.resolve(name), db)

    def register_factory(self, name: str,
                         factory: Callable[[], Connection]) -> None:
        self.parent.register_factory(self.resolve(name), factory)

    def unregister(self, name: str, *,
                   cache: Optional[QueryResultCache] = None) -> None:
        self.parent.unregister(self.resolve(name), cache=cache)

    # -- the engine-facing surface ----------------------------------------

    def __contains__(self, name: str) -> bool:
        return self.resolve(name) in self.parent

    def names(self) -> list[str]:
        prefix = self.namespace + self.SEPARATOR
        return [name[len(prefix):] for name in self.parent.names()
                if name.startswith(prefix)]

    def generation(self, name: str) -> WriteGeneration:
        return self.parent.generation(self.resolve(name))

    def shard_map(self, name: str) -> Optional["ShardMap"]:
        return self.parent.shard_map(self.resolve(name))

    def connect(self, name: str, *,
                deadline: Optional[Deadline] = None) -> Connection:
        return self.parent.connect(self.resolve(name), deadline=deadline)

    def pool(self, name: str) -> Optional[ConnectionPool]:
        return self.parent.pool(self.resolve(name))

    def active_connections(self, name: str) -> int:
        return self.parent.active_connections(self.resolve(name))

    def record_retries(self, count: int) -> None:
        self.parent.record_retries(count)


class MacroSqlSession:
    """All SQL activity of one macro invocation.

    Owns a connection for the duration of the request and a
    :class:`TransactionScope` implementing Section 5's two modes.  The
    engine calls :meth:`execute` once per ``%EXEC_SQL``-triggered SQL
    section and :meth:`finish` when report processing ends.
    """

    def __init__(self, connection: Connection, *,
                 mode: TransactionMode = TransactionMode.AUTO_COMMIT,
                 owns_connection: bool = True,
                 cache: Optional[QueryResultCache] = None,
                 database: str = "",
                 generation: Optional[WriteGeneration] = None,
                 retry: Optional[RetryPolicy] = None,
                 deadline: Optional[Deadline] = None):
        self.connection = connection
        self.scope = TransactionScope(connection, mode)
        self._owns_connection = owns_connection
        self.statement_log: list[str] = []
        #: Optional shared SELECT-result cache (see repro.sql.querycache).
        #: Only consulted in auto-commit mode and only when a write
        #: generation is available; ``database`` scopes the cache keys.
        self.cache = cache
        self.database = database
        self.generation = generation if generation is not None \
            else connection.generation
        #: Retry policy for transient failures of *idempotent reads*
        #: (never applied to writes or inside an open transaction).
        self.retry = retry
        #: Per-request deadline; checked before each attempt and before
        #: each backoff sleep.
        self.deadline = deadline
        #: Cache hits served by this session (request-level observability).
        self.cache_hits = 0
        #: Statement retries performed by this session.
        self.retries = 0

    def _retryable(self, sql: str) -> bool:
        """May this statement be transparently re-run after a failure?

        Only idempotent pure reads qualify, and never while an explicit
        transaction is open: re-running a read mid-transaction would
        widen its footprint, and re-running a *write* is out of the
        question (the paper's single-transaction mode rolls back and
        reports instead, Section 5).
        """
        return (self.scope.mode is not TransactionMode.SINGLE
                and not self.connection.in_transaction
                and is_cacheable_query(sql))

    def execute(self, sql: str, *, stream: bool = False) -> ExecutionResult:
        """Run one dynamically assembled SQL statement.

        Raises :class:`SQLError` on failure *after* recording it with the
        transaction scope (so single-mode rollback happens before the
        engine sees the exception).

        When a query cache is attached (and usable — auto-commit mode,
        pure-read statement (``SELECT``/``VALUES``/``WITH``; PRAGMA and
        EXPLAIN always re-execute), generation counter present), an
        unexpired cached result is returned without touching the
        database; a fresh result is stored under the generation stamp
        observed *before* execution, so a concurrent write can only make
        the entry stale, never wrong.

        Transient failures (:func:`repro.errors.is_transient`) of
        idempotent reads are retried under the session's policy with
        exponential backoff, within the request deadline.  When an
        ambient fault injector is active (chaos mode) it fires here —
        before the statement touches the database — and, absent an
        explicit policy, is absorbed by a default one.

        ``stream=True`` asks for a lazy result: a query's rows ride a
        live cursor (:attr:`ExecutionResult.row_iter`) instead of being
        fetched up front, and the statement's transaction bracket closes
        when the iterator is exhausted (or abandoned).  Streaming
        results bypass the query cache — their rows can be consumed only
        once — and only the *initial* execute is retryable; a failure
        mid-iteration propagates, since rows already handed out cannot
        be taken back.  Non-query statements execute eagerly either way.

        With tracing enabled, each call runs under a ``sql.execute``
        span carrying the statement digest, database, truncated SQL
        text, cache outcome and row count.  For a streaming result the
        span's duration covers statement dispatch only (rows are
        fetched later, inside ``report.render``); the ``rows``
        attribute is still filled in as the cursor drains.
        """
        span = TRACER.leaf("sql.execute")
        if span is None:
            return self._execute(sql, stream=stream)
        try:
            span.set("digest", statement_digest(sql))
            if self.database:
                span.set("database", self.database)
            span.set("sql", sql if len(sql) <= 200 else sql[:200])
            hits_before = self.cache_hits
            result = self._execute(sql, stream=stream)
            if self.cache_hits > hits_before:
                span.set("cached", True)
            if result.row_iter is not None:
                span.set("streaming", True)
                result.row_iter = self._counted_rows(
                    result.row_iter, result, span)
            else:
                span.set("rows", result.row_total)
            return result
        except BaseException as exc:
            span.attrs.setdefault("error", type(exc).__name__)
            sqlstate = getattr(exc, "sqlstate", None)
            if sqlstate:
                span.set("sqlstate", sqlstate)
            raise
        finally:
            span.finish()

    def _counted_rows(self, row_iter: Iterator[tuple[Any, ...]],
                      result: ExecutionResult,
                      span) -> Iterator[tuple[Any, ...]]:
        """Pass rows through; stamp the final count onto the span.

        ``row_iter`` is the pre-wrap cursor iterator (``result.row_iter``
        points at this generator by the time it first runs).  Attributes
        may be set after the span has timed out of its context —
        delivery (and worker export) happens at request end, well after
        the cursor drains.
        """
        try:
            yield from row_iter
        finally:
            span.set("rows", result.rows_fetched)

    def _execute(self, sql: str, *, stream: bool = False) -> ExecutionResult:
        """The uninstrumented execution path (see :meth:`execute`)."""
        self.statement_log.append(sql)
        if self.deadline is not None:
            self.deadline.check("statement")
        use_cache = (not stream
                     and self.cache is not None
                     and self.generation is not None
                     and self.scope.mode is not TransactionMode.SINGLE
                     and is_cacheable_query(sql))
        if use_cache:
            stamp = self.generation.stamp()
            cached = self.cache.get(self.database, sql, stamp)
            if cached is not None:
                self.cache_hits += 1
                self.scope.statements_run += 1  # counted, not bracketed
                return cached
        ambient = fault_injection.ambient_injector()
        retryable = self._retryable(sql)
        policy = self.retry
        if policy is None and ambient is not None:
            policy = DEFAULT_RETRY
        attempt = 1
        while True:
            try:
                if ambient is not None and retryable:
                    ambient.before_query(sql)
                result = (self._execute_streaming(sql) if stream
                          else self._execute_once(sql))
            except SQLError as exc:
                if (not retryable or policy is None
                        or attempt >= policy.max_attempts
                        or not is_transient(exc)):
                    raise
                delay = policy.delay(attempt)
                if (self.deadline is not None
                        and self.deadline.remaining() <= delay):
                    raise
                self.retries += 1
                attempt += 1
                time.sleep(delay)
                continue
            if use_cache and result.is_query:
                self.cache.put(self.database, sql, stamp, result)
            return result

    def _execute_once(self, sql: str) -> ExecutionResult:
        """One bracketed attempt at a statement."""
        self.scope.before_statement()
        try:
            cursor = self.connection.execute(sql)
        except SQLError as exc:
            self.scope.after_statement(exc)
            raise
        result = self._drain(cursor, sql)
        self.scope.after_statement(None)
        return result

    def _execute_streaming(self, sql: str) -> ExecutionResult:
        """One attempt at a statement whose rows stream off the cursor.

        For a result-set statement the transaction bracket stays open
        until the row iterator is exhausted or dropped; the engine
        consumes each result fully before running the next directive, so
        no two brackets ever overlap.  Statements without a result set
        complete their bracket here, exactly like the eager path.
        """
        self.scope.before_statement()
        try:
            cursor = self.connection.execute(sql)
        except SQLError as exc:
            self.scope.after_statement(exc)
            raise
        if not cursor.has_result_set:
            result = ExecutionResult(
                sql=sql, rowcount=max(cursor.rowcount, 0),
                is_query=is_query(sql))
            self.scope.after_statement(None)
            return result
        result = ExecutionResult(
            sql=sql, columns=cursor.column_names, is_query=True)
        result.row_iter = self._stream_cursor(cursor, result)
        return result

    def _stream_cursor(self, cursor: Cursor,
                       result: ExecutionResult) -> Iterator[tuple[Any, ...]]:
        """Yield rows off the live cursor, then close the bracket.

        The ``finally`` also runs when the consumer abandons the
        iterator (a streaming client disconnecting mid-page): the read's
        bracket completes cleanly with whatever was fetched.
        """
        error: Optional[SQLError] = None
        try:
            for row in cursor:
                result.rows_fetched += 1
                yield row
        except SQLError as exc:
            error = exc
            raise
        finally:
            cursor.close()
            self.scope.after_statement(error)

    @staticmethod
    def _drain(cursor: Cursor, sql: str) -> ExecutionResult:
        if cursor.has_result_set:
            rows = cursor.fetchall()
            return ExecutionResult(
                sql=sql, columns=cursor.column_names, rows=rows,
                rowcount=len(rows), is_query=True)
        return ExecutionResult(
            sql=sql, rowcount=max(cursor.rowcount, 0),
            is_query=is_query(sql))

    @property
    def failed(self) -> bool:
        return self.scope.failed

    def finish(self, success: bool = True) -> None:
        self.scope.finish(success)
        if self._owns_connection:
            self.connection.close()

    def __enter__(self) -> "MacroSqlSession":
        return self

    def __exit__(self, exc_type, _exc, _tb) -> None:
        self.finish(success=exc_type is None)
