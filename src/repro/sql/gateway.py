"""The database gateway facade the macro engine talks to.

Figure 5 of the paper shows DB2WWW between the web server and "DB2
databases on a wide variety of IBM and non-IBM platforms".  The engine
does not care which database a macro targets; it resolves the macro's
``DATABASE`` variable against a :class:`DatabaseRegistry` and runs
statements through a :class:`MacroSqlSession` that enforces the chosen
transaction mode.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Iterator, Optional

from repro.errors import SQLError, SQLObjectError
from repro.sql.connection import Connection, MemoryDatabase
from repro.sql.cursor import Cursor, value_to_text
from repro.sql.dialect import is_query
from repro.sql.transactions import TransactionMode, TransactionScope


@dataclass
class ExecutionResult:
    """The outcome of executing one SQL statement.

    For queries, ``columns`` carries the result column names and ``rows``
    the fetched data (the report generator consumed rows one at a time in
    1996; we fetch eagerly inside the statement's transaction bracket so a
    later rollback cannot invalidate an open cursor mid-report).
    """

    sql: str
    columns: list[str] = field(default_factory=list)
    rows: list[tuple[Any, ...]] = field(default_factory=list)
    rowcount: int = 0
    is_query: bool = False

    def iter_text_rows(self) -> Iterator[list[str]]:
        """Rows with every value rendered to gateway text form."""
        for row in self.rows:
            yield [value_to_text(value) for value in row]

    @property
    def row_total(self) -> int:
        return len(self.rows)


class DatabaseRegistry:
    """Named databases available to macros.

    A macro names its database with ``%DEFINE DATABASE = "..."`` (as in
    Appendix A: ``DATABASE="CELDIAL"``).  Applications register either a
    filesystem path, a :class:`MemoryDatabase`, or a connection factory
    under that name.
    """

    def __init__(self) -> None:
        self._factories: dict[str, Callable[[], Connection]] = {}

    def register_path(self, name: str, path: str) -> None:
        self._factories[name] = lambda: Connection(path)

    def register_memory(self, name: str,
                        db: Optional[MemoryDatabase] = None) -> MemoryDatabase:
        if db is None:
            db = MemoryDatabase()
        self._factories[name] = db.connect
        return db

    def register_factory(self, name: str,
                         factory: Callable[[], Connection]) -> None:
        self._factories[name] = factory

    def __contains__(self, name: str) -> bool:
        return name in self._factories

    def names(self) -> list[str]:
        return sorted(self._factories)

    def connect(self, name: str) -> Connection:
        factory = self._factories.get(name)
        if factory is None:
            raise SQLObjectError(
                f"database {name!r} is not registered with the gateway",
                sqlstate="08001")
        return factory()


class MacroSqlSession:
    """All SQL activity of one macro invocation.

    Owns a connection for the duration of the request and a
    :class:`TransactionScope` implementing Section 5's two modes.  The
    engine calls :meth:`execute` once per ``%EXEC_SQL``-triggered SQL
    section and :meth:`finish` when report processing ends.
    """

    def __init__(self, connection: Connection, *,
                 mode: TransactionMode = TransactionMode.AUTO_COMMIT,
                 owns_connection: bool = True):
        self.connection = connection
        self.scope = TransactionScope(connection, mode)
        self._owns_connection = owns_connection
        self.statement_log: list[str] = []

    def execute(self, sql: str) -> ExecutionResult:
        """Run one dynamically assembled SQL statement.

        Raises :class:`SQLError` on failure *after* recording it with the
        transaction scope (so single-mode rollback happens before the
        engine sees the exception).
        """
        self.statement_log.append(sql)
        self.scope.before_statement()
        try:
            cursor = self.connection.execute(sql)
        except SQLError as exc:
            self.scope.after_statement(exc)
            raise
        result = self._drain(cursor, sql)
        self.scope.after_statement(None)
        return result

    @staticmethod
    def _drain(cursor: Cursor, sql: str) -> ExecutionResult:
        if cursor.has_result_set:
            rows = cursor.fetchall()
            return ExecutionResult(
                sql=sql, columns=cursor.column_names, rows=rows,
                rowcount=len(rows), is_query=True)
        return ExecutionResult(
            sql=sql, rowcount=max(cursor.rowcount, 0),
            is_query=is_query(sql))

    @property
    def failed(self) -> bool:
        return self.scope.failed

    def finish(self, success: bool = True) -> None:
        self.scope.finish(success)
        if self._owns_connection:
            self.connection.close()

    def __enter__(self) -> "MacroSqlSession":
        return self

    def __exit__(self, exc_type, _exc, _tb) -> None:
        self.finish(success=exc_type is None)
