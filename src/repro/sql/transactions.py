"""The two transaction modes of Section 5.

"DB2WWW currently supports two transaction modes on a single client-server
interaction, one mode in which every SQL statement in a macro is a separate
transaction (auto-commit) and another mode in which all SQL statements in a
macro are executed as a single transaction (i.e., a rollback will occur if
any SQL statement fails)."
"""

from __future__ import annotations

import enum

from repro.errors import SQLError
from repro.sql.connection import Connection


class TransactionMode(enum.Enum):
    """How SQL statements within one macro invocation are grouped."""

    #: Every SQL statement is its own transaction.
    AUTO_COMMIT = "auto_commit"

    #: All SQL statements of the macro form a single transaction; any
    #: failure rolls back everything executed so far.
    SINGLE = "single"

    @classmethod
    def parse(cls, text: str) -> "TransactionMode":
        """Parse a mode name (accepts the enum value or name, any case)."""
        folded = text.strip().lower()
        for mode in cls:
            if folded in (mode.value, mode.name.lower()):
                return mode
        raise ValueError(f"unknown transaction mode {text!r}")


class TransactionScope:
    """Transaction bracket around the SQL statements of one macro run.

    The engine creates one scope per report-mode invocation and funnels
    every statement through :meth:`before_statement` /
    :meth:`after_statement`, then calls :meth:`finish` exactly once.
    """

    def __init__(self, connection: Connection,
                 mode: TransactionMode = TransactionMode.AUTO_COMMIT):
        self.connection = connection
        self.mode = mode
        self.statements_run = 0
        self.failed = False
        self._finished = False

    # -- statement bracket ------------------------------------------------

    def before_statement(self) -> None:
        if self.mode is TransactionMode.SINGLE:
            self.connection.begin()
        else:
            self.connection.begin()  # statement-scoped transaction

    def after_statement(self, error: SQLError | None) -> None:
        self.statements_run += 1
        if self.mode is TransactionMode.AUTO_COMMIT:
            if error is None:
                self.connection.commit()
            else:
                self.connection.rollback()
        elif error is not None:
            # Single mode: the first failure dooms the whole interaction.
            self.failed = True
            self.connection.rollback()

    # -- completion ---------------------------------------------------------

    def finish(self, success: bool = True) -> None:
        """Commit or roll back the macro-wide transaction (single mode)."""
        if self._finished:
            return
        self._finished = True
        if self.mode is TransactionMode.SINGLE and self.connection.in_transaction:
            if success and not self.failed:
                self.connection.commit()
            else:
                self.connection.rollback()

    def __enter__(self) -> "TransactionScope":
        return self

    def __exit__(self, exc_type, _exc, _tb) -> None:
        self.finish(success=exc_type is None)
