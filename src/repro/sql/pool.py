"""Connection pooling for the gateway.

A 1996 CGI deployment opened a database connection per request — the
dominant cost the paper's Figure 4 data flow implies.  The library keeps
that mode available (``PerRequestPool``) for faithful end-to-end
benchmarks, and provides a bounded reusing pool (``ConnectionPool``) that
the in-process dispatcher uses, so the benchmark harness can show the gap.
"""

from __future__ import annotations

import queue
import threading
from typing import Callable, Optional

from repro.errors import PoolExhaustedError
from repro.resilience.deadline import Deadline
from repro.sql.connection import Connection

ConnectionFactory = Callable[[], Connection]


class ConnectionPool:
    """A bounded pool of reusable connections.

    ``acquire`` blocks up to ``timeout`` seconds when all connections are
    out, then raises :class:`PoolExhaustedError` (SQLSTATE 57030, matching
    DB2's "resource unavailable" class).
    """

    def __init__(self, factory: ConnectionFactory, *, size: int = 4,
                 timeout: float = 5.0):
        if size < 1:
            raise ValueError("pool size must be at least 1")
        self._factory = factory
        self._size = size
        self._timeout = timeout
        self._idle: queue.LifoQueue[Connection] = queue.LifoQueue()
        self._created = 0
        self._evicted = 0
        self._lock = threading.Lock()
        self._closed = False

    # -- acquisition ------------------------------------------------------

    def acquire(self, *, deadline: Optional[Deadline] = None) -> Connection:
        """Check out a connection, waiting at most ``timeout`` seconds.

        A request :class:`~repro.resilience.deadline.Deadline` caps the
        wait further: a request with 50 ms of budget left never blocks
        the full pool timeout for a slot it could not use anyway.
        """
        while True:
            wait = self._timeout if deadline is None \
                else deadline.cap(self._timeout)
            if deadline is not None:
                deadline.check("pool acquire")
            with self._lock:
                if self._closed:
                    raise PoolExhaustedError("pool is closed")
                create = self._idle.empty() and self._created < self._size
                if create:
                    # Reserve the slot before calling the factory (outside
                    # the lock: factories may be slow); if the factory
                    # raises, the slot is reclaimed so the pool's capacity
                    # never shrinks permanently.
                    self._created += 1
            if create:
                try:
                    return self._factory()
                except BaseException:
                    with self._lock:
                        self._created -= 1
                    raise
            try:
                conn = self._idle.get(timeout=wait)
            except queue.Empty:
                raise PoolExhaustedError(
                    f"no connection available within "
                    f"{wait:.3g}s") from None
            if conn.closed:  # replace a connection that died while idle
                with self._lock:
                    self._created -= 1
                continue
            return conn

    def release(self, conn: Connection, *, broken: bool = False) -> None:
        """Return a connection; any open transaction is rolled back.

        Connections are health-validated on the way in: a closed, broken
        or unpingable connection is *evicted* — closed and its capacity
        slot freed so the next acquire builds a replacement — never
        recycled to another request.  Callers that saw a gateway error on
        the connection pass ``broken=True`` to skip straight to eviction.
        """
        if broken or conn.closed or not self._healthy(conn):
            self._evict(conn)
            return
        self._idle.put(conn)

    @staticmethod
    def _healthy(conn: Connection) -> bool:
        try:
            if conn.in_transaction:
                conn.rollback()
            return conn.ping()
        except Exception:  # noqa: BLE001 - any failure means "evict"
            return False

    def _evict(self, conn: Connection) -> None:
        with self._lock:
            self._created -= 1
            self._evicted += 1
        try:
            conn.close()
        except Exception:  # noqa: BLE001 - already broken; slot is freed
            pass

    def close(self) -> None:
        with self._lock:
            self._closed = True
        while True:
            try:
                self._idle.get_nowait().close()
            except queue.Empty:
                return

    # -- context-managed checkout ----------------------------------------

    def connection(self) -> "_PooledConnection":
        return _PooledConnection(self)

    @property
    def stats(self) -> dict[str, int]:
        return {"created": self._created, "idle": self._idle.qsize(),
                "size": self._size, "evicted": self._evicted}


class _PooledConnection:
    """``with pool.connection() as conn:`` checkout helper.

    When the body raised, the connection goes back flagged as broken —
    release() then validates/evicts instead of blindly recycling.
    """

    def __init__(self, pool: ConnectionPool):
        self._pool = pool
        self._conn: Optional[Connection] = None

    def __enter__(self) -> Connection:
        self._conn = self._pool.acquire()
        return self._conn

    def __exit__(self, exc_type, _exc, _tb) -> None:
        if self._conn is not None:
            self._pool.release(self._conn, broken=exc_type is not None)
            self._conn = None


class PerRequestPool:
    """The 1996 model: a fresh connection per checkout, closed on release.

    Implements the same interface as :class:`ConnectionPool` so the
    gateway can swap strategies; exists to let the end-to-end benchmark
    quantify connection-per-request cost.
    """

    def __init__(self, factory: ConnectionFactory):
        self._factory = factory

    def acquire(self, *, deadline: Optional[Deadline] = None) -> Connection:
        if deadline is not None:
            deadline.check("pool acquire")
        return self._factory()

    def release(self, conn: Connection, *, broken: bool = False) -> None:
        conn.close()

    def close(self) -> None:
        return None

    def connection(self) -> _PooledConnection:
        return _PooledConnection(self)  # type: ignore[arg-type]

    @property
    def stats(self) -> dict[str, int]:
        return {"created": -1, "idle": 0, "size": 0, "evicted": 0}
