"""Cursor: the result-set handle the report generator consumes.

Section 3.2.1's report machinery needs exactly this surface: column names
("The SQL query is initiated before the SQL report block is processed, and
the names of the columns are retrieved"), then row-at-a-time fetching so
the ``%ROW`` template is "printed out repeatedly as each row is fetched",
and a final count for ``ROW_NUM`` even when ``RPT_MAXROWS`` stopped the
printing early.
"""

from __future__ import annotations

import sqlite3
from typing import Any, Iterator, Optional

from repro.errors import ConnectionClosedError


class Cursor:
    """Wraps a ``sqlite3`` cursor with name/row accessors."""

    def __init__(self, raw: sqlite3.Cursor, sql: str):
        self._raw = raw
        self.sql = sql
        self._closed = False

    # -- metadata ---------------------------------------------------------

    @property
    def column_names(self) -> list[str]:
        """Names of the result columns (empty for non-query statements)."""
        if self._raw.description is None:
            return []
        return [d[0] for d in self._raw.description]

    @property
    def has_result_set(self) -> bool:
        return self._raw.description is not None

    @property
    def rowcount(self) -> int:
        """Rows affected by a DML statement (-1 for queries, as in DB-API)."""
        return self._raw.rowcount

    @property
    def lastrowid(self) -> Optional[int]:
        return self._raw.lastrowid

    # -- fetching ---------------------------------------------------------

    def fetchone(self) -> Optional[tuple[Any, ...]]:
        self._check_open()
        row = self._raw.fetchone()
        if row is None:
            return None
        return tuple(row)

    def fetchall(self) -> list[tuple[Any, ...]]:
        self._check_open()
        return [tuple(row) for row in self._raw.fetchall()]

    def fetchmany(self, size: int) -> list[tuple[Any, ...]]:
        self._check_open()
        return [tuple(row) for row in self._raw.fetchmany(size)]

    def __iter__(self) -> Iterator[tuple[Any, ...]]:
        while True:
            row = self.fetchone()
            if row is None:
                return
            yield row

    # -- lifecycle ----------------------------------------------------------

    def close(self) -> None:
        if not self._closed:
            self._raw.close()
            self._closed = True

    def _check_open(self) -> None:
        if self._closed:
            raise ConnectionClosedError("cursor is closed")

    def __enter__(self) -> "Cursor":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


def value_to_text(value: Any) -> str:
    """Render one column value the way the 1996 gateway printed it.

    NULL prints as the empty string (so that undefined-is-null composes
    with the conditional-variable idioms); floats drop a trailing ``.0``
    when they are integral, matching the paper's integer-looking examples
    (``custid = 10100``).
    """
    if value is None:
        return ""
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    if isinstance(value, bytes):
        return value.decode("utf-8", "replace")
    return str(value)
