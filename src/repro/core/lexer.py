"""Low-level scanning machinery for the macro language.

The macro language of Section 3 is line-oriented at the top (section
keywords appear at the start of a line, prefixed with ``%``) but free-form
inside blocks, so a classical token stream fits poorly.  Instead the parser
drives a :class:`Cursor` — a position in the source with line tracking and
a small vocabulary of matching operations.  All keyword matching is
case-insensitive ("The keywords are case insensitive"), while variable
names keep their case (Section 3).
"""

from __future__ import annotations

import re
from typing import Optional

from repro.errors import MacroSyntaxError, UnterminatedBlockError

#: Section keywords recognised at the start of a line.
SECTION_KEYWORDS = ("DEFINE", "SQL", "HTML_INPUT", "HTML_REPORT",
                    "INCLUDE")

#: Matches the next section opener at the beginning of a line.
SECTION_START_RE = re.compile(
    r"^[ \t]*%(DEFINE\b|SQL\b|HTML_INPUT\b|HTML_REPORT\b|INCLUDE\b|\{)",
    re.IGNORECASE | re.MULTILINE,
)

#: Matches a variable name at the cursor.
NAME_RE = re.compile(r"[A-Za-z_][A-Za-z0-9_\-]*")

#: Block terminator.
BLOCK_END = "%}"


class Cursor:
    """A scanning position inside macro source text.

    The cursor tracks the 1-based line number of its position, which every
    AST node records for error reporting.
    """

    def __init__(self, text: str, *, source: Optional[str] = None):
        self.text = text
        self.pos = 0
        self.source = source

    # -- basic queries --------------------------------------------------

    @property
    def line(self) -> int:
        """1-based line number at the current position."""
        return self.text.count("\n", 0, self.pos) + 1

    def line_at(self, pos: int) -> int:
        return self.text.count("\n", 0, pos) + 1

    def at_end(self) -> bool:
        return self.pos >= len(self.text)

    def rest(self) -> str:
        return self.text[self.pos:]

    def peek(self, n: int = 1) -> str:
        return self.text[self.pos:self.pos + n]

    # -- errors -----------------------------------------------------------

    def error(self, message: str, *, line: Optional[int] = None) -> MacroSyntaxError:
        return MacroSyntaxError(message, line=line or self.line,
                                source=self.source)

    def unterminated(self, what: str, line: int) -> UnterminatedBlockError:
        return UnterminatedBlockError(
            f"unterminated {what} (missing '%}}')", line=line,
            source=self.source)

    # -- consumption ------------------------------------------------------

    def skip_spaces(self) -> None:
        """Skip spaces and tabs (not newlines)."""
        while self.pos < len(self.text) and self.text[self.pos] in " \t":
            self.pos += 1

    def skip_whitespace(self) -> None:
        """Skip all whitespace including newlines."""
        while self.pos < len(self.text) and self.text[self.pos] in " \t\r\n":
            self.pos += 1

    def skip_blank_lines(self) -> None:
        self.skip_whitespace()

    def match_literal(self, literal: str) -> bool:
        """Consume ``literal`` if present at the cursor (case-sensitive)."""
        if self.text.startswith(literal, self.pos):
            self.pos += len(literal)
            return True
        return False

    def match_keyword(self, keyword: str) -> bool:
        """Consume ``keyword`` case-insensitively if present at the cursor."""
        end = self.pos + len(keyword)
        if self.text[self.pos:end].upper() == keyword.upper():
            self.pos = end
            return True
        return False

    def match_regex(self, pattern: re.Pattern[str]) -> Optional[re.Match[str]]:
        """Consume a regex match anchored at the cursor, if any."""
        match = pattern.match(self.text, self.pos)
        if match is not None:
            self.pos = match.end()
        return match

    def read_name(self) -> str:
        """Read a variable name at the cursor or raise."""
        match = self.match_regex(NAME_RE)
        if match is None:
            raise self.error("expected a variable name")
        return match.group(0)

    def read_quoted(self) -> str:
        """Read a double-quoted string starting at the cursor.

        Backslash escapes ``\\"`` and ``\\\\`` are honoured; the paper's
        examples never need them but real SQL text sometimes does.  The
        string must close on the same logical scan (newlines inside quotes
        are permitted — multi-line SQL commands in quoted defines occur in
        shipped Net.Data macros).
        """
        start_line = self.line
        if self.peek() != '"':
            raise self.error("expected a quoted string")
        self.pos += 1
        out: list[str] = []
        while self.pos < len(self.text):
            ch = self.text[self.pos]
            if ch == "\\" and self.peek(2) in ('\\"', "\\\\"):
                out.append(self.text[self.pos + 1])
                self.pos += 2
                continue
            if ch == '"':
                self.pos += 1
                return "".join(out)
            out.append(ch)
            self.pos += 1
        raise self.error("unterminated quoted string", line=start_line)

    def read_braced(self) -> str:
        """Read a ``{ ... %}`` multi-line value starting at the cursor.

        Returns the raw text between the braces.  Per Section 3.1.1 the
        value runs to the first ``%}``; brace values do not nest.
        """
        start_line = self.line
        if self.peek() != "{":
            raise self.error("expected '{'")
        self.pos += 1
        end = self.text.find(BLOCK_END, self.pos)
        if end < 0:
            raise self.unterminated("multi-line value", start_line)
        body = self.text[self.pos:end]
        self.pos = end + len(BLOCK_END)
        return body

    def read_until(self, *stops: str, required: bool = True,
                   what: str = "block") -> tuple[str, Optional[str]]:
        """Read text up to the nearest of several stop strings.

        Stop matching is case-insensitive (stops are keywords like
        ``%SQL_REPORT{``).  Returns ``(text, matched_stop)`` and leaves the
        cursor *after* the stop.  ``matched_stop`` is the canonical stop
        string passed in, or ``None`` when ``required`` is false and no stop
        was found (cursor then rests at end of text).
        """
        start_line = self.line
        lowered = self.text.lower()
        best_index = -1
        best_stop: Optional[str] = None
        for stop in stops:
            index = lowered.find(stop.lower(), self.pos)
            if index >= 0 and (best_index < 0 or index < best_index):
                best_index = index
                best_stop = stop
        if best_index < 0:
            if required:
                raise self.unterminated(what, start_line)
            text = self.text[self.pos:]
            self.pos = len(self.text)
            return text, None
        text = self.text[self.pos:best_index]
        self.pos = best_index + len(best_stop or "")
        return text, best_stop

    def rest_of_line(self) -> str:
        """Consume and return text up to (excluding) the next newline."""
        end = self.text.find("\n", self.pos)
        if end < 0:
            end = len(self.text)
        text = self.text[self.pos:end]
        self.pos = end
        return text

    def at_line_start_of(self, literal: str) -> bool:
        """True if, after horizontal space, the cursor line starts ``literal``."""
        probe = self.pos
        while probe < len(self.text) and self.text[probe] in " \t":
            probe += 1
        return self.text.startswith(literal, probe)


def find_next_section(text: str, pos: int) -> Optional[re.Match[str]]:
    """Locate the next section keyword at or after ``pos``.

    Returns the regex match (group 1 is the upper/lower-cased keyword) or
    ``None`` when no further section exists.
    """
    return SECTION_START_RE.search(text, pos)
