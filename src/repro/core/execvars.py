"""Executable (``%EXEC``) variable runtime — Section 3.1.4.

"The execute variable feature allows the invocation of any program from
the macro file and passing to it the values of variables defined in the
macro."  In 1996 this shelled out to the server's operating system.  Here
the default runner dispatches to a registry of named Python callables —
safe, deterministic and testable — and a subprocess-backed runner is
available behind an explicit opt-in for users who really do want to invoke
external programs from macros.

A runner's contract (consumed by :class:`repro.core.substitution.Evaluator`):

``run(command: str) -> tuple[str, str]``
    Returns ``(output, error_code)``.  ``output`` is spliced into the page
    at the reference position; ``error_code`` is stored in the variable
    (the empty string meaning success/NULL, matching the paper: "If there
    is no error, varname will be set to NULL").
"""

from __future__ import annotations

import shlex
import subprocess
from typing import Callable, Iterable

from repro.errors import ExecVariableError

#: A registered command: receives the argument list (after the command
#: word) and returns output text.  Raising an exception marks failure.
CommandFunc = Callable[[list[str]], str]


class RegistryExecRunner:
    """Executes ``%EXEC`` commands against a registry of Python callables.

    The command string is split with shell-like quoting; the first word
    selects the callable, the remainder becomes its argument list::

        runner = RegistryExecRunner()

        @runner.register("today")
        def today(args):
            return "1996-06-04"

    An unknown command word raises :class:`ExecVariableError` — a macro
    authoring mistake, not a run-time condition to hide.
    """

    def __init__(self) -> None:
        self._commands: dict[str, CommandFunc] = {}

    def register(self, name: str, func: CommandFunc | None = None):
        """Register a command (usable as a decorator)."""
        if func is None:
            def decorator(f: CommandFunc) -> CommandFunc:
                self._commands[name] = f
                return f
            return decorator
        self._commands[name] = func
        return func

    def commands(self) -> Iterable[str]:
        return self._commands.keys()

    def run(self, command: str) -> tuple[str, str]:
        try:
            words = shlex.split(command)
        except ValueError as exc:
            return "", f"badcommand: {exc}"
        if not words:
            return "", ""
        name, *args = words
        func = self._commands.get(name)
        if func is None:
            raise ExecVariableError(
                f"%EXEC command {name!r} is not registered")
        try:
            return func(args), ""
        except Exception as exc:  # noqa: BLE001 - error code semantics
            # The paper stores the failure code in the variable so a
            # conditional variable can print a message; any exception from
            # the command is therefore data, not a crash.
            return "", f"{type(exc).__name__}: {exc}"


class SubprocessExecRunner:
    """Executes ``%EXEC`` commands as real operating-system processes.

    Faithful to the 1996 behaviour and therefore dangerous: only use with
    trusted macros.  Construction requires the explicit keyword
    ``i_understand_the_risk=True`` so the hazard is visible in code review.
    """

    def __init__(self, *, i_understand_the_risk: bool = False,
                 timeout: float = 10.0):
        if not i_understand_the_risk:
            raise ExecVariableError(
                "SubprocessExecRunner executes arbitrary commands from "
                "macro text; pass i_understand_the_risk=True to enable")
        self.timeout = timeout

    def run(self, command: str) -> tuple[str, str]:
        try:
            proc = subprocess.run(
                shlex.split(command), capture_output=True, text=True,
                timeout=self.timeout, check=False)
        except (OSError, subprocess.TimeoutExpired, ValueError) as exc:
            return "", f"{type(exc).__name__}: {exc}"
        error_code = "" if proc.returncode == 0 else str(proc.returncode)
        return proc.stdout, error_code


class NullExecRunner:
    """A runner that refuses every command (hard default posture)."""

    def run(self, command: str) -> tuple[str, str]:
        raise ExecVariableError(
            f"%EXEC is disabled for this engine (command: {command!r})")
