"""The cross-language variable substitution mechanism (Sections 3 and 4.3).

This module is the paper's central contribution: the lazy, recursive
evaluator that turns unevaluated variable definitions plus client inputs
into strings — HTML fragments on the way out, SQL fragments on the way in.

Semantics implemented (with the paper's wording):

* **Lazy evaluation** — "Variables are dereferenced ... when they are
  referenced directly or indirectly in an HTML input or report section";
  nothing is evaluated at definition time.
* **Recursive dereferencing** — "When a variable is evaluated to get its
  value, any variables referenced in its value string are also recursively
  evaluated."
* **Undefined is null, not an error** — "an undefined variable is not an
  error, it merely evaluates to the null string."
* **Circular references are an error** — detected with an explicit
  evaluation stack, reported with the full cycle.
* **Escapes** — ``$$(x)`` evaluates to the literal text ``$(x)`` and is
  *not* re-evaluated in the same pass.
* **Conditional variables** — forms (a)/(c) test whether the test variable
  "exists and is not null" (and, per Section 2.2, defined-as-null equals
  undefined); forms (b)/(d) yield the value only "if this value string does
  not contain any undefined (or null) variables".
* **List variables** — elements are evaluated individually and joined with
  the (dynamically evaluated) separator, "intelligent enough to add
  delimiters only if the individual value strings are not null".
* **Executable variables** — referencing one runs its command, splices the
  command's output at the reference position, and records the error code in
  the variable (null on success) for later conditional tests.
"""

from __future__ import annotations

from typing import Optional

from repro.core.values import Escape, Literal, Reference, ValueString
from repro.core.variables import (
    ConditionalEntry,
    Entry,
    ExecEntry,
    ListEntry,
    SimpleEntry,
    VariableStore,
)
from repro.errors import CircularReferenceError, ExecVariableError

__all__ = ["Evaluator"]


class Evaluator:
    """Evaluates value strings and variable names against a store.

    ``exec_runner`` is an object with a ``run(command: str) -> tuple[str,
    str]`` method returning ``(output, error_code)`` — see
    :mod:`repro.core.execvars`.  When no runner is supplied, referencing an
    executable variable raises :class:`ExecVariableError`, which is the
    safe default for macros from untrusted sources.
    """

    def __init__(self, store: VariableStore, *, exec_runner=None):
        self.store = store
        self.exec_runner = exec_runner
        self._stack: list[str] = []
        self._active: set[str] = set()

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------

    def evaluate(self, value: ValueString) -> str:
        """Evaluate a value string to text (the null string for nothing)."""
        return self._eval_value(value, strict=False)[0]

    def evaluate_strict(self, value: ValueString) -> Optional[str]:
        """Evaluate for conditional forms (b)/(d).

        Returns ``None`` (null) when any reference in the value string —
        directly — evaluates to the null string; otherwise the evaluated
        text.  Escaped references do not count.
        """
        text, all_defined = self._eval_value(value, strict=True)
        if not all_defined:
            return None
        return text

    def evaluate_name(self, name: str) -> str:
        """Dereference one variable; undefined evaluates to the null string."""
        entry = self.store.lookup(name)
        if entry is None:
            return ""
        if isinstance(entry, str):  # system variable: already evaluated
            return entry
        return self._eval_entry(name, entry)

    def evaluate_test(self, name: str) -> bool:
        """The "exists and is not null" test of conditional forms (a)/(c).

        For executable variables the test consults the stored error code of
        the last run instead of re-executing the command (the paper pairs
        exec and conditional variables exactly for this error-message
        pattern; re-running the command to test its outcome would be
        nonsensical).
        """
        entry = self.store.lookup(name)
        if entry is None:
            return False
        if isinstance(entry, ExecEntry):
            return entry.last_error != ""
        return self.evaluate_name(name) != ""

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _eval_value(self, value: ValueString,
                    strict: bool) -> tuple[str, bool]:
        """Evaluate a value string.

        Returns ``(text, all_defined)`` where ``all_defined`` is False when
        ``strict`` and some reference evaluated to null.
        """
        segments = value.segments
        # Fast path for the overwhelmingly common shapes — a pure-literal
        # value string (most HTML/SQL text carries no references at all)
        # needs no list build or join, and has no references for strict
        # mode to find.
        if len(segments) == 1 and type(segments[0]) is Literal:
            return segments[0].text, True
        if not segments:
            return "", True
        out: list[str] = []
        all_defined = True
        for segment in segments:
            if isinstance(segment, Literal):
                out.append(segment.text)
            elif isinstance(segment, Escape):
                out.append(f"$({segment.name})")
            elif isinstance(segment, Reference):
                text = self.evaluate_name(segment.name)
                if strict and text == "":
                    all_defined = False
                out.append(text)
            else:  # pragma: no cover - exhaustive over the union
                raise TypeError(f"unknown segment {segment!r}")
        return "".join(out), all_defined

    def _eval_entry(self, name: str, entry: Entry) -> str:
        if name in self._active:
            raise CircularReferenceError(self._stack + [name])
        self._stack.append(name)
        self._active.add(name)
        try:
            if isinstance(entry, SimpleEntry):
                return self._eval_value(entry.value, strict=False)[0]
            if isinstance(entry, ConditionalEntry):
                return self._eval_conditional(entry)
            if isinstance(entry, ListEntry):
                return self._eval_list(entry)
            if isinstance(entry, ExecEntry):
                return self._eval_exec(name, entry)
            raise TypeError(
                f"unknown entry {entry!r}")  # pragma: no cover
        finally:
            self._stack.pop()
            self._active.discard(name)

    def _eval_conditional(self, entry: ConditionalEntry) -> str:
        if entry.test_name is not None:
            # Forms (a)/(c): test variable decides the branch.
            if self.evaluate_test(entry.test_name):
                return self._eval_value(entry.then_value, strict=False)[0]
            if entry.else_value is None:
                return ""
            return self._eval_value(entry.else_value, strict=False)[0]
        # Forms (b)/(d): null if the value string has undefined/null refs.
        result = self.evaluate_strict(entry.then_value)
        if result is None:
            return ""
        return result

    def _eval_list(self, entry: ListEntry) -> str:
        separator = self._eval_value(entry.separator, strict=False)[0]
        parts: list[str] = []
        for element in entry.elements:
            if isinstance(element, SimpleEntry):
                text = self._eval_value(element.value, strict=False)[0]
            else:
                text = self._eval_conditional(element)
            if text != "":
                parts.append(text)
        return separator.join(parts)

    def _eval_exec(self, name: str, entry: ExecEntry) -> str:
        if self.exec_runner is None:
            raise ExecVariableError(
                f"executable variable {name!r} referenced but no exec "
                "runner is configured")
        command = self._eval_value(entry.command, strict=False)[0]
        output, error_code = self.exec_runner.run(command)
        entry.last_error = error_code
        return output
