"""Recursive-descent parser for the DB2 WWW macro language of Section 3.

The entry point is :func:`parse_macro`, which turns macro source text into
a :class:`repro.core.ast.MacroFile`.  The grammar implemented here follows
the paper's syntax boxes exactly; places where the paper leaves room for
interpretation are flagged in the docstrings and in DESIGN.md:

* Line-format SQL sections ("A SQL section can be of a line format or a
  block format (we only discuss block formats here)") are supported: the
  rest of the line is the SQL command.
* ``%SQL_MESSAGE`` rule syntax is concretised as
  ``code : "text" [: continue|exit]`` per line, where ``code`` is an
  integer SQLCODE, a 5-character SQLSTATE or ``default``.
* The else-branch of conditional forms (a)/(c) may be omitted; the value
  is then the null string, matching the paper's null-on-miss semantics.
"""

from __future__ import annotations

import re
from typing import Optional

from repro.core import ast
from repro.core.lexer import BLOCK_END, Cursor, find_next_section
from repro.core.values import ValueString
from repro.errors import DuplicateSectionError, MacroSyntaxError

# The section name may itself be a $(variable) reference, so the name
# grammar admits one level of nested parentheses.
_EXEC_SQL_RE = re.compile(
    r"%EXEC_SQL(\((?P<name>(?:[^()\n]|\([^()\n]*\))*)\))?",
    re.IGNORECASE)
_MESSAGE_RULE_RE = re.compile(
    r"^\s*(?P<code>default|[+-]?\d+|[0-9A-Za-z]{5})\s*:\s*"
    r"\"(?P<text>(?:[^\"\\]|\\.)*)\"\s*(?::\s*(?P<action>continue|exit)\s*)?$",
    re.IGNORECASE,
)


def parse_macro(text: str, *, source: Optional[str] = None) -> ast.MacroFile:
    """Parse complete macro source into a :class:`MacroFile`.

    Raises :class:`repro.errors.MacroSyntaxError` (or a subclass) on
    malformed input.  Text outside recognised sections is preserved as
    :class:`FreeText` and ignored by the engine, mirroring the original
    system's tolerance of commentary between sections.
    """
    macro = ast.MacroFile(source=source)
    cursor = Cursor(text, source=source)
    while True:
        match = find_next_section(cursor.text, cursor.pos)
        if match is None:
            trailing = cursor.rest()
            if trailing.strip():
                macro.sections.append(
                    ast.FreeText(trailing, line=cursor.line))
            break
        if match.start() > cursor.pos:
            gap = cursor.text[cursor.pos:match.start()]
            if gap.strip():
                macro.sections.append(ast.FreeText(gap, line=cursor.line))
        line = cursor.line_at(match.start())
        keyword = match.group(1).upper()
        cursor.pos = match.end()
        if keyword == "{":
            body, _ = cursor.read_until(BLOCK_END,
                                        what="comment block")
            macro.sections.append(ast.CommentBlock(body, line=line))
        elif keyword == "DEFINE":
            macro.sections.append(_parse_define(cursor, line))
        elif keyword == "SQL":
            macro.sections.append(_parse_sql(cursor, line))
        elif keyword == "INCLUDE":
            macro.sections.append(_parse_include(cursor, line))
        elif keyword == "HTML_INPUT":
            section = _parse_html_input(cursor, line)
            if macro.html_input is not None:
                raise DuplicateSectionError(
                    "macro contains more than one %HTML_INPUT section",
                    line=line, source=source)
            macro.sections.append(section)
        else:  # HTML_REPORT
            section = _parse_html_report(cursor, line)
            if macro.html_report is not None:
                raise DuplicateSectionError(
                    "macro contains more than one %HTML_REPORT section",
                    line=line, source=source)
            macro.sections.append(section)
    _validate(macro)
    return macro


# ---------------------------------------------------------------------------
# %DEFINE
# ---------------------------------------------------------------------------


def _parse_define(cursor: Cursor, line: int) -> ast.DefineSection:
    cursor.skip_spaces()
    if cursor.match_literal("{"):
        statements = []
        while True:
            cursor.skip_whitespace()
            if cursor.at_end():
                raise cursor.unterminated("%DEFINE block", line)
            if cursor.match_literal(BLOCK_END):
                break
            statements.append(_parse_define_statement(cursor))
        return ast.DefineSection(tuple(statements), line=line, block=True)
    statement = _parse_define_statement(cursor)
    return ast.DefineSection((statement,), line=line, block=False)


def _parse_define_statement(cursor: Cursor) -> ast.DefineStatement:
    line = cursor.line
    if cursor.match_keyword("%LIST"):
        cursor.skip_spaces()
        separator = ValueString.parse(cursor.read_quoted())
        cursor.skip_spaces()
        name = cursor.read_name()
        return ast.ListDeclaration(name, separator, line=line)
    name = cursor.read_name()
    cursor.skip_spaces()
    if not cursor.match_literal("="):
        raise cursor.error(f"expected '=' after variable name {name!r}")
    cursor.skip_spaces()
    if cursor.match_keyword("%EXEC"):
        cursor.skip_spaces()
        command = _read_value(cursor)
        return ast.ExecDeclaration(name, command, line=line)
    if cursor.match_literal("?"):
        # Conditional forms (b)/(d): no test variable.
        cursor.skip_spaces()
        then_value = _read_value(cursor)
        return ast.ConditionalAssignment(name, then_value, line=line)
    if cursor.peek() in ('"', "{"):
        value, multiline = _read_value_tagged(cursor)
        return ast.SimpleAssignment(name, value, line=line,
                                    multiline=multiline)
    # Conditional forms (a)/(c): a test variable name precedes '?'.
    test_name = cursor.read_name()
    cursor.skip_spaces()
    if not cursor.match_literal("?"):
        raise cursor.error(
            f"expected '?' after test variable {test_name!r} in conditional "
            f"assignment to {name!r}")
    cursor.skip_spaces()
    then_value = _read_value(cursor)
    cursor.skip_whitespace()
    else_value = None
    if cursor.match_literal(":"):
        cursor.skip_whitespace()
        else_value = _read_value(cursor)
    return ast.ConditionalAssignment(
        name, then_value, test_name=test_name, else_value=else_value,
        line=line)


def _read_value(cursor: Cursor) -> ValueString:
    value, _multiline = _read_value_tagged(cursor)
    return value


def _read_value_tagged(cursor: Cursor) -> tuple[ValueString, bool]:
    """Read a quoted one-line or braced multi-line value string."""
    if cursor.peek() == '"':
        return ValueString.parse(cursor.read_quoted()), False
    if cursor.peek() == "{":
        return ValueString.parse(cursor.read_braced()), True
    raise cursor.error("expected a value: '\"...\"' or '{... %}'")


# ---------------------------------------------------------------------------
# %INCLUDE
# ---------------------------------------------------------------------------


def _parse_include(cursor: Cursor, line: int) -> ast.IncludeSection:
    cursor.skip_spaces()
    name = cursor.read_quoted()
    if not name.strip():
        raise cursor.error("%INCLUDE needs a macro file name")
    return ast.IncludeSection(name.strip(), line=line)


# ---------------------------------------------------------------------------
# %SQL
# ---------------------------------------------------------------------------


def _parse_sql(cursor: Cursor, line: int) -> ast.SqlSection:
    cursor.skip_spaces()
    name: Optional[str] = None
    if cursor.match_literal("("):
        cursor.skip_spaces()
        name = cursor.read_name()
        cursor.skip_spaces()
        if not cursor.match_literal(")"):
            raise cursor.error("expected ')' after SQL section name")
        cursor.skip_spaces()
    if not cursor.match_literal("{"):
        # Line format: the SQL command is the rest of the line.
        command_text = cursor.rest_of_line().strip()
        if not command_text:
            raise cursor.error("empty line-format %SQL section")
        return ast.SqlSection(ValueString.parse(command_text), name=name,
                              line=line)
    command_text, stop = cursor.read_until(
        "%SQL_REPORT{", "%SQL_MESSAGE{", BLOCK_END, what="%SQL section")
    report: Optional[ast.SqlReportBlock] = None
    message: Optional[ast.SqlMessageBlock] = None
    while stop != BLOCK_END:
        if stop is not None and stop.upper().startswith("%SQL_REPORT"):
            if report is not None:
                raise cursor.error("duplicate %SQL_REPORT block")
            report = _parse_sql_report(cursor)
        else:
            if message is not None:
                raise cursor.error("duplicate %SQL_MESSAGE block")
            message = _parse_sql_message(cursor)
        _gap, stop = cursor.read_until(
            "%SQL_REPORT{", "%SQL_MESSAGE{", BLOCK_END, what="%SQL section")
        if _gap.strip():
            raise cursor.error(
                "unexpected text between blocks inside %SQL section: "
                + _gap.strip()[:40])
    command = ValueString.parse(command_text.strip())
    if not command.raw:
        raise MacroSyntaxError("empty SQL command in %SQL section",
                               line=line, source=cursor.source)
    return ast.SqlSection(command, name=name, report=report,
                          message=message, line=line)


def _parse_sql_report(cursor: Cursor) -> ast.SqlReportBlock:
    line = cursor.line
    header_text, stop = cursor.read_until(
        "%ROW{", BLOCK_END, what="%SQL_REPORT block")
    row: Optional[ast.RowBlock] = None
    footer_text = ""
    if stop is not None and stop.upper() == "%ROW{":
        row_line = cursor.line
        template_text, _ = cursor.read_until(BLOCK_END, what="%ROW block")
        row = ast.RowBlock(ValueString.parse(template_text), line=row_line)
        footer_text, _ = cursor.read_until(
            BLOCK_END, what="%SQL_REPORT block")
    return ast.SqlReportBlock(
        header=ValueString.parse(header_text),
        row=row,
        footer=ValueString.parse(footer_text),
        line=line,
    )


def _parse_sql_message(cursor: Cursor) -> ast.SqlMessageBlock:
    line = cursor.line
    body, _ = cursor.read_until(BLOCK_END, what="%SQL_MESSAGE block")
    rules = []
    for offset, raw_line in enumerate(body.splitlines()):
        if not raw_line.strip():
            continue
        match = _MESSAGE_RULE_RE.match(raw_line)
        if match is None:
            raise MacroSyntaxError(
                f"malformed %SQL_MESSAGE rule: {raw_line.strip()!r} "
                "(expected: code : \"text\" [: continue|exit])",
                line=line + offset, source=cursor.source)
        action = (match.group("action") or "exit").lower()
        text = match.group("text").replace('\\"', '"').replace("\\\\", "\\")
        rules.append(ast.MessageRule(
            code=match.group("code").lower(),
            text=ValueString.parse(text),
            action=action,
            line=line + offset,
        ))
    return ast.SqlMessageBlock(tuple(rules), line=line)


# ---------------------------------------------------------------------------
# %HTML_INPUT / %HTML_REPORT
# ---------------------------------------------------------------------------


def _parse_html_input(cursor: Cursor, line: int) -> ast.HtmlInputSection:
    cursor.skip_spaces()
    if not cursor.match_literal("{"):
        raise cursor.error("expected '{' after %HTML_INPUT")
    body, _ = cursor.read_until(BLOCK_END, what="%HTML_INPUT section")
    return ast.HtmlInputSection(ValueString.parse(body), line=line)


def _parse_html_report(cursor: Cursor, line: int) -> ast.HtmlReportSection:
    cursor.skip_spaces()
    if not cursor.match_literal("{"):
        raise cursor.error("expected '{' after %HTML_REPORT")
    body_start_line = cursor.line
    body, _ = cursor.read_until(BLOCK_END, what="%HTML_REPORT section")
    pieces = _split_report_body(body, body_start_line)
    return ast.HtmlReportSection(tuple(pieces), line=line)


def _split_report_body(body: str, start_line: int) -> list[ast.HtmlPiece]:
    """Split report HTML on ``%EXEC_SQL`` directives (Section 3.4)."""
    pieces: list[ast.HtmlPiece] = []
    pos = 0
    for match in _EXEC_SQL_RE.finditer(body):
        if match.start() > pos:
            pieces.append(ValueString.parse(body[pos:match.start()]))
        name_text = match.group("name")
        directive_line = start_line + body.count("\n", 0, match.start())
        if name_text is None:
            pieces.append(ast.ExecSqlDirective(line=directive_line))
        else:
            pieces.append(ast.ExecSqlDirective(
                name=ValueString.parse(name_text.strip()),
                line=directive_line))
        pos = match.end()
    if pos < len(body):
        pieces.append(ValueString.parse(body[pos:]))
    return pieces


# ---------------------------------------------------------------------------
# Whole-macro validation
# ---------------------------------------------------------------------------


def _validate(macro: ast.MacroFile) -> None:
    """Check cross-section constraints from Sections 3.2 and 3.4."""
    seen_names: set[str] = set()
    for section in macro.sql_sections():
        if section.name is not None:
            if section.name in seen_names:
                raise DuplicateSectionError(
                    f"duplicate SQL section name {section.name!r}",
                    line=section.line, source=macro.source)
            seen_names.add(section.name)
    report = macro.html_report
    if report is not None:
        unnamed = [d for d in report.exec_sql_directives() if d.name is None]
        if len(unnamed) > 1:
            raise MacroSyntaxError(
                "at most one unnamed %EXEC_SQL is allowed in the HTML "
                "report section",
                line=unnamed[1].line, source=macro.source)
        has_includes = bool(macro.includes())
        for directive in report.exec_sql_directives():
            if directive.name is None or directive.name.has_references():
                continue  # run-time resolution
            if has_includes:
                continue  # the named section may come from an include
            name = directive.name.raw
            if name and macro.named_sql_section(name) is None:
                raise MacroSyntaxError(
                    f"%EXEC_SQL({name}) refers to a SQL section that does "
                    "not exist",
                    line=directive.line, source=macro.source)
