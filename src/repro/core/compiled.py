"""Compiled ``%ROW`` templates — the report generator's hot path.

The interpreted row path (Section 3.2.1 as :mod:`repro.core.report`
implements it) pays, per fetched row, one ``set_system`` call for every
column name spelling (``Vi``, ``V_col``, ``V.col``) plus ``VLIST`` and
``ROW_NUM``, and then re-dispatches the row template through
:class:`~repro.core.substitution.Evaluator` segment by segment, with a
store lookup per reference.  For a template that only references the
paper's *implicit report variables* none of that machinery can change the
output: the value of ``$(V2)`` is column 2 of the current row, always.

This module compiles such a template **once per section** into a flat
render plan — static text fragments plus slots filled by direct index
into the row tuple — so the per-row cost collapses to a list copy, a few
indexed reads and one ``str.join``.

Fidelity rules (lazy substitution, Section 4.3.1, must be bit-for-bit):

* Only references that *provably* resolve to this section's implicit
  variables compile: ``Vi``/``Ni`` with an in-range index, ``V_col`` /
  ``V.col`` / ``N_col`` / ``N.col`` naming a retrieved column (exact
  spelling first, then the case-insensitive layer — the same order as
  :meth:`VariableStore.lookup`), ``VLIST``, ``NLIST`` and ``ROW_NUM``.
* Anything else — user variables, conditionals, executable variables,
  out-of-range indexes, column forms naming no retrieved column — makes
  the template *uncompilable* and the caller falls back to the
  interpreted path.
* A reference resolved through the case-insensitive layer is re-checked
  at render time against the store's exact system layer: an earlier SQL
  section in the same macro run may have installed an exact-spelling
  system variable that the interpreted lookup would see first (stale
  shadowing).  :meth:`CompiledRowTemplate.shadowed_by` reports this and
  the caller falls back, keeping the two paths indistinguishable.

Compilation results are memoised module-wide: macros are parsed once and
cached by :class:`~repro.core.macrofile.MacroLibrary`, so the same
``ValueString`` object renders on every request and the plan is reused
across requests, not just across rows.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Any, Optional, Sequence

from repro.core.values import Escape, Literal, Reference, ValueString
from repro.html.entities import escape_html
from repro.sql.cursor import value_to_text

__all__ = ["CompiledRowTemplate", "compile_row_template"]

#: Must match :data:`repro.core.report.LIST_CONCAT_SEPARATOR`; imported
#: lazily there to avoid a cycle, asserted equal in the test-suite.
LIST_CONCAT_SEPARATOR = " "

#: Memo bound: one entry per (row template, column tuple, escape flag)
#: triple actually served.  256 is far beyond any realistic macro set.
_MEMO_MAX = 256

_memo: "OrderedDict[tuple[ValueString, tuple[str, ...], bool], Optional[CompiledRowTemplate]]" = OrderedDict()
_memo_lock = threading.Lock()


class CompiledRowTemplate:
    """A render plan for one ``%ROW`` template against one column set.

    ``parts`` is the full output skeleton with empty strings at dynamic
    positions; the slot lists say which positions to fill from where.
    Instances are immutable after compilation and safe to share across
    threads (``render`` copies ``parts``).
    """

    __slots__ = ("_parts", "_value_slots", "_rownum_slots", "_vlist_slots",
                 "_escape", "ci_names")

    def __init__(self, parts: list[str],
                 value_slots: list[tuple[int, int]],
                 rownum_slots: list[int],
                 vlist_slots: list[int],
                 escape: bool,
                 ci_names: tuple[str, ...]):
        self._parts = parts
        self._value_slots = value_slots
        self._rownum_slots = rownum_slots
        self._vlist_slots = vlist_slots
        self._escape = escape
        #: Reference spellings resolved through the case-insensitive
        #: layer; must not be shadowed by exact system variables.
        self.ci_names = ci_names

    def shadowed_by(self, store) -> bool:
        """True when a stale exact system variable would win the lookup."""
        return any(store.has_system(name) for name in self.ci_names)

    def render(self, row: Sequence[Any], row_num: int) -> str:
        """Render one row tuple (raw database values) to template text."""
        parts = self._parts.copy()
        escape = self._escape
        for part_index, col_index in self._value_slots:
            text = value_to_text(row[col_index])
            if escape:
                text = escape_html(text)
            parts[part_index] = text
        if self._rownum_slots:
            text = str(row_num)
            for part_index in self._rownum_slots:
                parts[part_index] = text
        if self._vlist_slots:
            values = [value_to_text(value) for value in row]
            if escape:
                values = [escape_html(value) for value in values]
            text = LIST_CONCAT_SEPARATOR.join(values)
            for part_index in self._vlist_slots:
                parts[part_index] = text
        return "".join(parts)


def compile_row_template(template: ValueString, columns: Sequence[str], *,
                         escape_values: bool = False
                         ) -> Optional[CompiledRowTemplate]:
    """Compile ``template`` against ``columns``; ``None`` = fall back.

    Memoised: repeated calls with the same template object, column names
    and escape flag return the cached plan (or the cached ``None``).
    """
    key = (template, tuple(columns), escape_values)
    with _memo_lock:
        if key in _memo:
            _memo.move_to_end(key)
            return _memo[key]
    compiled = _compile(template, tuple(columns), escape_values)
    with _memo_lock:
        _memo[key] = compiled
        _memo.move_to_end(key)
        while len(_memo) > _MEMO_MAX:
            _memo.popitem(last=False)
    return compiled


def clear_compile_cache() -> None:
    """Drop all memoised plans (tests and long-lived reloading servers)."""
    with _memo_lock:
        _memo.clear()


# ----------------------------------------------------------------------
# Static analysis
# ----------------------------------------------------------------------

#: Sentinel op kinds used while building the plan.
_ROW_NUM = object()
_VLIST = object()


def _compile(template: ValueString, columns: tuple[str, ...],
             escape: bool) -> Optional[CompiledRowTemplate]:
    ops: list[Any] = []  # str (static) | int (column index) | sentinel
    ci_names: list[str] = []
    for segment in template.segments:
        if isinstance(segment, Literal):
            ops.append(segment.text)
        elif isinstance(segment, Escape):
            ops.append(f"$({segment.name})")
        elif isinstance(segment, Reference):
            op = _classify(segment.name, columns, ci_names)
            if op is None:
                return None
            ops.append(op)
        else:  # pragma: no cover - exhaustive over the union
            return None
    # Merge adjacent static text so the render loop touches fewer parts.
    parts: list[str] = []
    value_slots: list[tuple[int, int]] = []
    rownum_slots: list[int] = []
    vlist_slots: list[int] = []
    last_was_static = False
    for op in ops:
        if isinstance(op, str):
            if last_was_static:
                parts[-1] += op
            else:
                parts.append(op)
            last_was_static = True
            continue
        if isinstance(op, int):
            value_slots.append((len(parts), op))
        elif op is _ROW_NUM:
            rownum_slots.append(len(parts))
        else:  # _VLIST
            vlist_slots.append(len(parts))
        parts.append("")
        last_was_static = False
    return CompiledRowTemplate(parts, value_slots, rownum_slots,
                               vlist_slots, escape, tuple(ci_names))


def _classify(name: str, columns: tuple[str, ...],
              ci_names: list[str]) -> Any:
    """Map one reference to a render op, or ``None`` for non-implicit.

    Mirrors what :meth:`ReportGenerator._install_row` installs and the
    exact-then-case-insensitive order of :meth:`VariableStore.lookup`.
    When several columns share a name the *last* wins, because each
    ``set_system`` overwrites the previous one.
    """
    if name == "ROW_NUM":
        return _ROW_NUM
    if name == "VLIST":
        return _VLIST
    if name == "NLIST":
        return LIST_CONCAT_SEPARATOR.join(columns)
    head, tail = name[:1], name[1:]
    if head in ("V", "N") and tail.isdigit():
        index = int(tail)
        # ``V01`` is NOT ``V1``: the store only installs the canonical
        # spelling, so a zero-padded reference resolves elsewhere.
        if str(index) != tail or not 1 <= index <= len(columns):
            return None
        if head == "V":
            return index - 1
        return columns[index - 1]
    # Column-name forms: V_col / V.col / N_col / N.col.  Exact spelling
    # first (it lands in the store's exact system layer), then the
    # case-insensitive layer.
    if name[:2] in ("V_", "V.", "N_", "N."):
        index = _last_index(columns, name[2:])
        if index is not None:
            return index if name[0] == "V" else columns[index]
    folded = name.lower()
    if folded[:2] in ("v_", "v.", "n_", "n."):
        index = _last_index_folded(columns, folded[2:])
        if index is not None:
            ci_names.append(name)
            return index if folded[0] == "v" else columns[index]
    return None


def _last_index(columns: tuple[str, ...], name: str) -> Optional[int]:
    for index in range(len(columns) - 1, -1, -1):
        if columns[index] == name:
            return index
    return None


def _last_index_folded(columns: tuple[str, ...],
                       folded: str) -> Optional[int]:
    for index in range(len(columns) - 1, -1, -1):
        if columns[index].lower() == folded:
            return index
    return None
