"""SQL report generation — Section 3.2.1 of the paper.

Once a SQL section's command has executed, its result is rendered either
through the section's ``%SQL_REPORT`` block (custom layout) or in "a
default table format if no SQL report section exists".

The custom path instantiates the paper's implicit report variables:

========== ==========================================================
``Ni``      name of the *i*-th column (1-based)
``N_col``   set if a column named *col* was retrieved (case-insensitive,
            also reachable as ``N.col`` — the paper spells it both ways)
``NLIST``   concatenation of all column names
``ROW_NUM`` current row number while fetching; total row count after
``Vi``      value of the *i*-th column of the current row
``V_col``   value of the column named *col* (case-insensitive)
``VLIST``   concatenation of all values of the current row
========== ==========================================================

``RPT_MAXROWS`` limits how many rows *print*; fetching continues so that
``ROW_NUM`` ends at the true total ("After all rows have been fetched,
ROW_NUM contains the total number of rows that result from the query,
regardless of whether all rows were printed").

``START_ROW_NUM`` (an extension the paper points at — Section 4.3 lists
"scrollable cursors" among the features the lazy-substitution machinery
enables, and the shipped successor implemented exactly this variable)
makes the report start printing at the given 1-based row, so a macro can
page through a result set with hidden-variable Next/Previous links.
Together: rows ``START_ROW_NUM .. START_ROW_NUM+RPT_MAXROWS-1`` print.
"""

from __future__ import annotations

from typing import Optional

from repro.core.ast import SqlReportBlock, SqlSection
from repro.core.substitution import Evaluator
from repro.core.variables import VariableStore
from repro.html.entities import escape_html
from repro.sql.cursor import value_to_text
from repro.sql.gateway import ExecutionResult

#: Separator used when building ``NLIST``/``VLIST``.  The paper only says
#: the strings are "created by concatenating" names/values; a single space
#: keeps the output readable and matches the shipped system's default.
LIST_CONCAT_SEPARATOR = " "


class ReportGenerator:
    """Renders SQL execution results into HTML report fragments."""

    def __init__(self, store: VariableStore, evaluator: Evaluator, *,
                 escape_values: bool = False):
        self.store = store
        self.evaluator = evaluator
        #: When true, column values substituted into custom ``%ROW``
        #: templates are HTML-escaped.  Off by default for fidelity — the
        #: 1996 system substituted raw values (Figure 8 relies on a raw
        #: value inside an HREF attribute) — but applications handling
        #: untrusted data should enable it (see repro.security).
        self.escape_values = escape_values

    # ------------------------------------------------------------------
    # Entry point
    # ------------------------------------------------------------------

    def render(self, section: SqlSection, result: ExecutionResult) -> str:
        """Render one executed SQL section's result."""
        if section.report is not None:
            return self._render_custom(section.report, result)
        return self._render_default(result)

    # ------------------------------------------------------------------
    # Custom %SQL_REPORT rendering
    # ------------------------------------------------------------------

    def _render_custom(self, block: SqlReportBlock,
                       result: ExecutionResult) -> str:
        out: list[str] = []
        self._install_column_names(result)
        out.append(self.evaluator.evaluate(block.header))
        window = self._print_window()
        row_num = 0
        if block.row is not None and result.is_query:
            for row_values in result.iter_text_rows():
                row_num += 1
                self._install_row(result.columns, row_values, row_num)
                if window.prints(row_num):
                    out.append(self.evaluator.evaluate(block.row.template))
        # ROW_NUM ends at the total fetched, printed or not.
        self.store.set_system("ROW_NUM", str(row_num))
        self.store.set_system("ROWCOUNT", str(
            result.row_total if result.is_query else result.rowcount))
        out.append(self.evaluator.evaluate(block.footer))
        return "".join(out)

    def _install_column_names(self, result: ExecutionResult) -> None:
        names = result.columns
        for i, name in enumerate(names, start=1):
            self.store.set_system(f"N{i}", name)
            self.store.set_system(f"N_{name}", name, case_insensitive=True)
            self.store.set_system(f"N.{name}", name, case_insensitive=True)
        self.store.set_system(
            "NLIST", LIST_CONCAT_SEPARATOR.join(names))
        self.store.set_system("ROW_NUM", "0")

    def _install_row(self, columns: list[str], values: list[str],
                     row_num: int) -> None:
        rendered = [self._maybe_escape(v) for v in values]
        self.store.set_system("ROW_NUM", str(row_num))
        for i, (name, value) in enumerate(zip(columns, rendered), start=1):
            self.store.set_system(f"V{i}", value)
            self.store.set_system(f"V_{name}", value, case_insensitive=True)
            self.store.set_system(f"V.{name}", value, case_insensitive=True)
        self.store.set_system(
            "VLIST", LIST_CONCAT_SEPARATOR.join(rendered))

    def _maybe_escape(self, value: str) -> str:
        if self.escape_values:
            return escape_html(value)
        return value

    def _print_window(self) -> "_PrintWindow":
        """The row window that prints: START_ROW_NUM + RPT_MAXROWS."""
        return _PrintWindow(
            start=self._int_setting("START_ROW_NUM", minimum=1),
            limit=self._int_setting("RPT_MAXROWS", minimum=1))

    def _int_setting(self, name: str, *, minimum: int) -> Optional[int]:
        """An integer report setting; invalid/out-of-range means unset."""
        raw = self.evaluator.evaluate_name(name)
        if not raw:
            return None
        try:
            value = int(raw)
        except ValueError:
            return None
        if value < minimum:
            return None
        return value

    # ------------------------------------------------------------------
    # Default table format
    # ------------------------------------------------------------------

    def _render_default(self, result: ExecutionResult) -> str:
        """The paper's "default table format".

        Values are always HTML-escaped here: the table markup is ours, so
        raw substitution would let data break the page structure.  For a
        non-query statement there is no table; a short confirmation line is
        produced instead (and ``ROWCOUNT`` is set for the report text).
        """
        self.store.set_system("ROWCOUNT", str(
            result.row_total if result.is_query else result.rowcount))
        if not result.is_query:
            self.store.set_system("ROW_NUM", "0")
            return (f"<P>Statement executed successfully. "
                    f"{result.rowcount} row(s) affected.</P>\n")
        self._install_column_names(result)
        out = ["<TABLE BORDER=1>\n<TR>"]
        for name in result.columns:
            out.append(f"<TH>{escape_html(name)}</TH>")
        out.append("</TR>\n")
        window = self._print_window()
        row_num = 0
        for values in result.iter_text_rows():
            row_num += 1
            if not window.prints(row_num):
                continue
            out.append("<TR>")
            for value in values:
                out.append(f"<TD>{escape_html(value)}</TD>")
            out.append("</TR>\n")
        out.append("</TABLE>\n")
        self.store.set_system("ROW_NUM", str(row_num))
        return "".join(out)


class _PrintWindow:
    """The contiguous range of row numbers a report prints."""

    __slots__ = ("first", "last")

    def __init__(self, start: Optional[int], limit: Optional[int]):
        self.first = start or 1
        self.last = (self.first + limit - 1) if limit is not None else None

    def prints(self, row_num: int) -> bool:
        if row_num < self.first:
            return False
        return self.last is None or row_num <= self.last
