"""SQL report generation — Section 3.2.1 of the paper.

Once a SQL section's command has executed, its result is rendered either
through the section's ``%SQL_REPORT`` block (custom layout) or in "a
default table format if no SQL report section exists".

The custom path instantiates the paper's implicit report variables:

========== ==========================================================
``Ni``      name of the *i*-th column (1-based)
``N_col``   set if a column named *col* was retrieved (case-insensitive,
            also reachable as ``N.col`` — the paper spells it both ways)
``NLIST``   concatenation of all column names
``ROW_NUM`` current row number while fetching; total row count after
``Vi``      value of the *i*-th column of the current row
``V_col``   value of the column named *col* (case-insensitive)
``VLIST``   concatenation of all values of the current row
========== ==========================================================

``RPT_MAXROWS`` limits how many rows *print*; fetching continues so that
``ROW_NUM`` ends at the true total ("After all rows have been fetched,
ROW_NUM contains the total number of rows that result from the query,
regardless of whether all rows were printed").

``START_ROW_NUM`` (an extension the paper points at — Section 4.3 lists
"scrollable cursors" among the features the lazy-substitution machinery
enables, and the shipped successor implemented exactly this variable)
makes the report start printing at the given 1-based row, so a macro can
page through a result set with hidden-variable Next/Previous links.
Together: rows ``START_ROW_NUM .. START_ROW_NUM+RPT_MAXROWS-1`` print.
"""

from __future__ import annotations

from typing import Iterator, Optional

from repro.core.ast import SqlReportBlock, SqlSection
from repro.core.compiled import CompiledRowTemplate, compile_row_template
from repro.core.substitution import Evaluator
from repro.core.variables import VariableStore
from repro.html.entities import escape_html
from repro.sql.cursor import value_to_text
from repro.sql.gateway import ExecutionResult

#: Separator used when building ``NLIST``/``VLIST``.  The paper only says
#: the strings are "created by concatenating" names/values; a single space
#: keeps the output readable and matches the shipped system's default.
LIST_CONCAT_SEPARATOR = " "


class RowRenderer:
    """A pluggable result renderer — the content-negotiation hook.

    The default rendering of a SQL section is the paper's HTML pipeline
    (``%SQL_REPORT`` template or default table).  A :class:`RowRenderer`
    replaces that *presentation* while reusing the same execution and
    row-streaming machinery: :meth:`render_iter` is handed each executed
    section in macro order and yields output chunks straight off the
    live cursor, and :meth:`finish` yields any trailing chunks (a JSON
    envelope's closing brackets) once the whole macro has been walked.

    Implementations must keep the engine's observable variable state
    intact — install ``ROW_NUM``/``ROWCOUNT`` through ``generator``'s
    store as the HTML paths do — so macros that branch on those after a
    section behave identically under any renderer.
    """

    #: When set, overrides the page content type (and any macro-declared
    #: ``CONTENT_TYPE``) — e.g. ``"application/json"``.
    content_type: Optional[str] = None
    #: When true, the engine drops free-text/HTML chunks (section bodies,
    #: SHOWSQL echoes, degraded-error blocks) so only renderer output
    #: reaches the client.  Required for structured formats.
    suppress_free_text: bool = False

    def render_iter(self, section: SqlSection, result: ExecutionResult,
                    generator: "ReportGenerator") -> Iterator[str]:
        raise NotImplementedError

    def finish(self) -> Iterator[str]:
        return iter(())


class ReportGenerator:
    """Renders SQL execution results into HTML report fragments."""

    def __init__(self, store: VariableStore, evaluator: Evaluator, *,
                 escape_values: bool = False,
                 compile_templates: bool = True,
                 row_renderer: Optional[RowRenderer] = None):
        self.store = store
        self.evaluator = evaluator
        #: When set, every section renders through this
        #: :class:`RowRenderer` instead of the HTML paths below.
        self.row_renderer = row_renderer
        #: When true, column values substituted into custom ``%ROW``
        #: templates are HTML-escaped.  Off by default for fidelity — the
        #: 1996 system substituted raw values (Figure 8 relies on a raw
        #: value inside an HREF attribute) — but applications handling
        #: untrusted data should enable it (see repro.security).
        self.escape_values = escape_values
        #: When true (the default), ``%ROW`` templates that reference only
        #: implicit report variables render through the compiled fast path
        #: (:mod:`repro.core.compiled`); templates that reference anything
        #: else always use the interpreted evaluator, whose lazy semantics
        #: the compiled path preserves bit-for-bit.
        self.compile_templates = compile_templates

    # ------------------------------------------------------------------
    # Entry point
    # ------------------------------------------------------------------

    def render(self, section: SqlSection, result: ExecutionResult) -> str:
        """Render one executed SQL section's result."""
        return "".join(self.render_iter(section, result))

    def render_iter(self, section: SqlSection,
                    result: ExecutionResult) -> Iterator[str]:
        """Render one result as a chunk stream (header, rows, footer).

        The buffered :meth:`render` is exactly the join of this stream;
        the streaming HTTP path consumes it chunk by chunk so a 100k-row
        report never exists as one string.
        """
        if self.row_renderer is not None:
            return self.row_renderer.render_iter(section, result, self)
        if section.report is not None:
            return self._render_custom(section.report, result)
        return self._render_default(result)

    # ------------------------------------------------------------------
    # Custom %SQL_REPORT rendering
    # ------------------------------------------------------------------

    def _render_custom(self, block: SqlReportBlock,
                       result: ExecutionResult) -> Iterator[str]:
        self._install_column_names(result)
        yield self.evaluator.evaluate(block.header)
        window = self._print_window()
        row_num = 0
        if block.row is not None and result.is_query:
            compiled = self._compile_row(block, result)
            if compiled is not None:
                row_num = yield from self._render_rows_compiled(
                    compiled, result, window)
            else:
                for row_values in result.iter_text_rows():
                    row_num += 1
                    self._install_row(result.columns, row_values, row_num)
                    if window.prints(row_num):
                        yield self.evaluator.evaluate(block.row.template)
        # ROW_NUM ends at the total fetched, printed or not.
        self.store.set_system("ROW_NUM", str(row_num))
        self.store.set_system("ROWCOUNT", str(
            result.row_total if result.is_query else result.rowcount))
        yield self.evaluator.evaluate(block.footer)

    def _compile_row(self, block: SqlReportBlock,
                     result: ExecutionResult
                     ) -> Optional[CompiledRowTemplate]:
        """The compiled plan for this section, or ``None`` to interpret."""
        if not self.compile_templates or block.row is None:
            return None
        compiled = compile_row_template(
            block.row.template, result.columns,
            escape_values=self.escape_values)
        if compiled is None or compiled.shadowed_by(self.store):
            return None
        return compiled

    def _render_rows_compiled(self, compiled: CompiledRowTemplate,
                              result: ExecutionResult,
                              window: "_PrintWindow") -> Iterator[str]:
        """Run the row loop through the compiled plan.

        Rows outside the print window are counted without being rendered
        (or even text-converted).  The *last* fetched row is installed
        into the store exactly as the interpreted loop would have left
        it, so the footer and any later SQL section observe identical
        system-variable state.  Returns the row count (via the
        generator's return value).
        """
        row_num = 0
        last_row = None
        render = compiled.render
        prints = window.prints
        for row in result.iter_rows():
            row_num += 1
            last_row = row
            if prints(row_num):
                yield render(row, row_num)
        if last_row is not None:
            values = [value_to_text(value) for value in last_row]
            self._install_row(result.columns, values, row_num)
        return row_num

    def _install_column_names(self, result: ExecutionResult) -> None:
        names = result.columns
        for i, name in enumerate(names, start=1):
            self.store.set_system(f"N{i}", name)
            self.store.set_system(f"N_{name}", name, case_insensitive=True)
            self.store.set_system(f"N.{name}", name, case_insensitive=True)
        self.store.set_system(
            "NLIST", LIST_CONCAT_SEPARATOR.join(names))
        self.store.set_system("ROW_NUM", "0")

    def _install_row(self, columns: list[str], values: list[str],
                     row_num: int) -> None:
        rendered = [self._maybe_escape(v) for v in values]
        self.store.set_system("ROW_NUM", str(row_num))
        for i, (name, value) in enumerate(zip(columns, rendered), start=1):
            self.store.set_system(f"V{i}", value)
            self.store.set_system(f"V_{name}", value, case_insensitive=True)
            self.store.set_system(f"V.{name}", value, case_insensitive=True)
        self.store.set_system(
            "VLIST", LIST_CONCAT_SEPARATOR.join(rendered))

    def _maybe_escape(self, value: str) -> str:
        if self.escape_values:
            return escape_html(value)
        return value

    def _print_window(self) -> "_PrintWindow":
        """The row window that prints: START_ROW_NUM + RPT_MAXROWS."""
        return _PrintWindow(
            start=self._int_setting("START_ROW_NUM", minimum=1),
            limit=self._int_setting("RPT_MAXROWS", minimum=1))

    def _int_setting(self, name: str, *, minimum: int) -> Optional[int]:
        """An integer report setting; invalid/out-of-range means unset."""
        raw = self.evaluator.evaluate_name(name)
        if not raw:
            return None
        try:
            value = int(raw)
        except ValueError:
            return None
        if value < minimum:
            return None
        return value

    # ------------------------------------------------------------------
    # Default table format
    # ------------------------------------------------------------------

    def _render_default(self, result: ExecutionResult) -> Iterator[str]:
        """The paper's "default table format".

        Values are always HTML-escaped here: the table markup is ours, so
        raw substitution would let data break the page structure.  For a
        non-query statement there is no table; a short confirmation line is
        produced instead (and ``ROWCOUNT`` is set for the report text).

        A streaming result's ``row_total`` is only correct after the row
        loop, so ``ROWCOUNT`` for queries is (re)installed at the end.
        """
        if not result.is_query:
            self.store.set_system("ROWCOUNT", str(result.rowcount))
            self.store.set_system("ROW_NUM", "0")
            yield (f"<P>Statement executed successfully. "
                   f"{result.rowcount} row(s) affected.</P>\n")
            return
        self._install_column_names(result)
        head = ["<TABLE BORDER=1>\n<TR>"]
        for name in result.columns:
            head.append(f"<TH>{escape_html(name)}</TH>")
        head.append("</TR>\n")
        yield "".join(head)
        window = self._print_window()
        prints = window.prints
        row_num = 0
        # Hot loop: rows outside the print window are counted without
        # text conversion; printed rows render with one join per row.
        for row in result.iter_rows():
            row_num += 1
            if not prints(row_num):
                continue
            cells = "</TD><TD>".join(
                escape_html(value_to_text(value)) for value in row)
            if row:
                yield f"<TR><TD>{cells}</TD></TR>\n"
            else:
                yield "<TR></TR>\n"
        self.store.set_system("ROW_NUM", str(row_num))
        self.store.set_system("ROWCOUNT", str(result.row_total))
        yield "</TABLE>\n"


class _PrintWindow:
    """The contiguous range of row numbers a report prints."""

    __slots__ = ("first", "last")

    def __init__(self, start: Optional[int], limit: Optional[int]):
        self.first = start or 1
        self.last = (self.first + limit - 1) if limit is not None else None

    def prints(self, row_num: int) -> bool:
        if row_num < self.first:
            return False
        return self.last is None or row_num <= self.last
