"""Typed abstract syntax tree for the DB2 WWW macro language.

A macro file (Section 3 of the paper) is a sequence of *sections*:

* ``%DEFINE`` sections (one or more) holding define-statements,
* ``%SQL`` sections (zero or more, optionally named), each containing one
  SQL command plus optional ``%SQL_REPORT`` and ``%SQL_MESSAGE`` blocks,
* at most one ``%HTML_INPUT`` section,
* at most one ``%HTML_REPORT`` section.

Free text between sections is preserved as :class:`FreeText` nodes so that
``unparse`` round-trips a macro file; the engine ignores such text, as the
original system did with comments.

Every node records the 1-based source ``line`` where it begins so errors
can point at macro source.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Union

from repro.core.values import ValueString

# ---------------------------------------------------------------------------
# Define statements (Section 3.1)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class SimpleAssignment:
    """``varname = "value"`` — Section 3.1.1."""

    name: str
    value: ValueString
    line: int = 0
    multiline: bool = False

    def unparse(self) -> str:
        if self.multiline:
            return f"{self.name} = {{{self.value.unparse()}%}}"
        return f'{self.name} = "{self.value.unparse()}"'


@dataclass(frozen=True)
class ConditionalAssignment:
    """``varname = [testvar] ? "v1" [: "v2"]`` — Section 3.1.2.

    Covers all four syntactic forms of the paper:

    * forms (a)/(c): ``test_name`` is set; value is ``then_value`` when the
      test variable exists and is not null, else ``else_value``;
    * forms (b)/(d): ``test_name`` is ``None``; value is ``then_value`` when
      it contains no undefined/null references, else null.

    ``else_value`` of ``None`` means "null string" (forms (b)/(d) and an
    omitted else-branch).
    """

    name: str
    then_value: ValueString
    test_name: Optional[str] = None
    else_value: Optional[ValueString] = None
    line: int = 0

    def unparse(self) -> str:
        test = f"{self.test_name} " if self.test_name else ""
        text = f'{self.name} = {test}? "{self.then_value.unparse()}"'
        if self.else_value is not None:
            text += f' : "{self.else_value.unparse()}"'
        return text


@dataclass(frozen=True)
class ListDeclaration:
    """``%LIST "separator" varname`` — Section 3.1.3.

    The separator is itself a value string: "the value-separator can in
    turn contain references to other variables and hence we can have
    dynamically varying delimiters".
    """

    name: str
    separator: ValueString
    line: int = 0

    def unparse(self) -> str:
        return f'%LIST "{self.separator.unparse()}" {self.name}'


@dataclass(frozen=True)
class ExecDeclaration:
    """``varname = %EXEC "command-string"`` — Section 3.1.4."""

    name: str
    command: ValueString
    line: int = 0

    def unparse(self) -> str:
        return f'{self.name} = %EXEC "{self.command.unparse()}"'


DefineStatement = Union[
    SimpleAssignment, ConditionalAssignment, ListDeclaration, ExecDeclaration
]


# ---------------------------------------------------------------------------
# Sections
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class DefineSection:
    """A ``%DEFINE`` statement or ``%DEFINE{ ... %}`` block."""

    statements: tuple[DefineStatement, ...]
    line: int = 0
    block: bool = True

    def unparse(self) -> str:
        if not self.block and len(self.statements) == 1:
            return f"%DEFINE {self.statements[0].unparse()}"
        body = "\n".join(s.unparse() for s in self.statements)
        return "%DEFINE{\n" + body + "\n%}"


@dataclass(frozen=True)
class RowBlock:
    """The ``%ROW{ ... %}`` block inside a SQL report (Section 3.2.1)."""

    template: ValueString
    line: int = 0

    def unparse(self) -> str:
        return "%ROW{" + self.template.unparse() + "%}"


@dataclass(frozen=True)
class SqlReportBlock:
    """``%SQL_REPORT{ header %ROW{...%} footer %}`` — Section 3.2.1.

    ``header`` is the HTML preceding the ``%ROW`` block (printed once before
    the first row), ``footer`` the HTML following it (printed once after all
    rows).  ``row`` may be absent, in which case only header/footer print.
    """

    header: ValueString
    row: Optional[RowBlock]
    footer: ValueString
    line: int = 0

    def unparse(self) -> str:
        parts = ["%SQL_REPORT{", self.header.unparse()]
        if self.row is not None:
            parts.append(self.row.unparse())
        parts.append(self.footer.unparse())
        parts.append("%}")
        return "".join(parts)


@dataclass(frozen=True)
class MessageRule:
    """One rule of a ``%SQL_MESSAGE`` block.

    ``code`` is an integer SQLCODE, a five-character SQLSTATE string, or the
    string ``"default"``.  ``action`` is ``"continue"`` or ``"exit"`` and
    controls whether macro processing resumes after the message is printed
    (our concretisation of the Developer's-Guide behaviour the paper defers
    to; see DESIGN.md).
    """

    code: str
    text: ValueString
    action: str = "exit"
    line: int = 0

    def unparse(self) -> str:
        return f'{self.code} : "{self.text.unparse()}" : {self.action}'


@dataclass(frozen=True)
class SqlMessageBlock:
    """``%SQL_MESSAGE{ ... %}`` — Section 3.2.2."""

    rules: tuple[MessageRule, ...]
    line: int = 0

    def unparse(self) -> str:
        body = "\n".join(rule.unparse() for rule in self.rules)
        return "%SQL_MESSAGE{\n" + body + "\n%}"


@dataclass(frozen=True)
class SqlSection:
    """A ``%SQL[(name)]{ command [report] [message] %}`` section."""

    command: ValueString
    name: Optional[str] = None
    report: Optional[SqlReportBlock] = None
    message: Optional[SqlMessageBlock] = None
    line: int = 0

    def unparse(self) -> str:
        head = f"%SQL({self.name}){{" if self.name else "%SQL{"
        parts = [head, self.command.unparse()]
        if self.report is not None:
            parts.append(self.report.unparse())
        if self.message is not None:
            parts.append(self.message.unparse())
        parts.append("%}")
        return "".join(parts)


@dataclass(frozen=True)
class ExecSqlDirective:
    """An ``%EXEC_SQL`` or ``%EXEC_SQL(name)`` directive (Section 3.4).

    ``name`` is ``None`` for the unnamed form (execute every unnamed SQL
    section in macro order).  A named form's name is a value string because
    "the SQL section name ... may be stored in a variable that gets
    dereferenced at run time".
    """

    name: Optional[ValueString] = None
    line: int = 0

    def unparse(self) -> str:
        if self.name is None:
            return "%EXEC_SQL"
        return f"%EXEC_SQL({self.name.unparse()})"


#: HTML sections interleave raw HTML (value strings) with directives.
HtmlPiece = Union[ValueString, ExecSqlDirective]


@dataclass(frozen=True)
class HtmlInputSection:
    """``%HTML_INPUT{ ... %}`` — Section 3.3.

    Input sections contain no ``%EXEC_SQL`` directives; the body is a single
    value string.
    """

    body: ValueString
    line: int = 0

    def unparse(self) -> str:
        return "%HTML_INPUT{" + self.body.unparse() + "%}"


@dataclass(frozen=True)
class HtmlReportSection:
    """``%HTML_REPORT{ ... %}`` — Section 3.4."""

    pieces: tuple[HtmlPiece, ...]
    line: int = 0

    def unparse(self) -> str:
        parts = ["%HTML_REPORT{"]
        for piece in self.pieces:
            parts.append(piece.unparse())
        parts.append("%}")
        return "".join(parts)

    def exec_sql_directives(self) -> list[ExecSqlDirective]:
        return [p for p in self.pieces if isinstance(p, ExecSqlDirective)]


@dataclass(frozen=True)
class IncludeSection:
    """``%INCLUDE "name"`` — composition of macro files.

    The paper's system stored one application per macro file; its shipped
    successor added file inclusion so applications could share headers,
    footers and common DEFINE blocks.  The engine never sees this node:
    :class:`repro.core.macrofile.MacroLibrary` expands includes at load
    time (with cycle detection), splicing the included file's sections in
    place.
    """

    name: str
    line: int = 0

    def unparse(self) -> str:
        return f'%INCLUDE "{self.name}"'


@dataclass(frozen=True)
class CommentBlock:
    """``%{ ... %}`` — an explicit comment block.

    The shipped system supported block comments so whole sections could
    be commented out during development; the engine ignores them
    completely (a ``%SQL`` inside a comment never registers).  Comments
    do not nest: the first ``%}`` ends the comment, so commenting out a
    block section leaves its trailing ``%}`` as inert free text.
    """

    text: str
    line: int = 0

    def unparse(self) -> str:
        return "%{" + self.text + "%}"


@dataclass(frozen=True)
class FreeText:
    """Text outside any section; ignored by the engine, kept for round-trip."""

    text: str
    line: int = 0

    def unparse(self) -> str:
        return self.text


Section = Union[
    DefineSection, SqlSection, HtmlInputSection, HtmlReportSection,
    IncludeSection, CommentBlock, FreeText
]


@dataclass
class MacroFile:
    """A fully parsed macro file."""

    sections: list[Section] = field(default_factory=list)
    source: Optional[str] = None

    # -- convenience accessors -----------------------------------------

    @property
    def html_input(self) -> Optional[HtmlInputSection]:
        for section in self.sections:
            if isinstance(section, HtmlInputSection):
                return section
        return None

    @property
    def html_report(self) -> Optional[HtmlReportSection]:
        for section in self.sections:
            if isinstance(section, HtmlReportSection):
                return section
        return None

    def sql_sections(self) -> list[SqlSection]:
        return [s for s in self.sections if isinstance(s, SqlSection)]

    def unnamed_sql_sections(self) -> list[SqlSection]:
        return [s for s in self.sql_sections() if s.name is None]

    def named_sql_section(self, name: str) -> Optional[SqlSection]:
        for section in self.sql_sections():
            if section.name == name:
                return section
        return None

    def includes(self) -> list["IncludeSection"]:
        return [s for s in self.sections if isinstance(s, IncludeSection)]

    def unparse(self) -> str:
        """Regenerate macro source text from the tree."""
        return "\n".join(section.unparse() for section in self.sections)
