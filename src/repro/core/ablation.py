"""Ablation variants of the substitution engine.

DESIGN.md calls out the design choices behind the paper's mechanism; the
classes here implement the *rejected* alternatives so the ablation
benchmarks can quantify what each choice costs and the tests can show
what it breaks.  None of these belongs in a production configuration.

``MemoizingEvaluator``
    Caches every variable evaluation for the lifetime of the evaluator.
    This is the "why not just cache?" question: memoisation is faster on
    reference-heavy pages but *semantically wrong* for the paper's
    system — the report loop redefines ``V1…``/``ROW_NUM`` per row and
    ``%EXEC`` variables must re-run per reference, so a cached value is
    stale the moment the row advances.  (The engine's correct answer is
    lazy re-evaluation every time, which is what Section 4.3.1
    specifies.)

``EagerStoreEvaluator``
    Evaluates each definition at *definition* time (the "eager" strategy
    the paper rejects with its lazy-substitution design).  Breaks the
    Section 4.3.1 example — a variable referencing a later definition
    captures null forever even if evaluated after the later definition
    appears — and breaks client-input override of defaults referenced
    from earlier defines.
"""

from __future__ import annotations

from repro.core.substitution import Evaluator
from repro.core.values import ValueString
from repro.core.variables import VariableStore


class MemoizingEvaluator(Evaluator):
    """Ablation: cache ``evaluate_name`` results (incorrect on purpose)."""

    def __init__(self, store: VariableStore, *, exec_runner=None):
        super().__init__(store, exec_runner=exec_runner)
        self._cache: dict[str, str] = {}

    def evaluate_name(self, name: str) -> str:
        cached = self._cache.get(name)
        if cached is not None:
            return cached
        value = super().evaluate_name(name)
        self._cache[name] = value
        return value

    def cache_info(self) -> dict[str, int]:
        return {"entries": len(self._cache)}


class EagerStoreEvaluator(Evaluator):
    """Ablation: evaluate definitions eagerly at snapshot time.

    ``snapshot()`` walks every currently defined name, evaluates it with
    the *correct* lazy evaluator, and freezes the results; subsequent
    ``evaluate_name`` calls only consult the frozen table.  This models
    a system that substitutes at definition time instead of at print
    time.
    """

    def __init__(self, store: VariableStore, *, exec_runner=None):
        super().__init__(store, exec_runner=exec_runner)
        self._frozen: dict[str, str] = {}
        self.snapshot()

    def snapshot(self) -> None:
        lazy = Evaluator(self.store, exec_runner=self.exec_runner)
        self._frozen = {
            name: lazy.evaluate_name(name) for name in self.store.names()
        }

    def evaluate_name(self, name: str) -> str:
        return self._frozen.get(name, "")

    def evaluate(self, value: ValueString) -> str:
        # Frozen lookups only; escapes and literals behave normally.
        return super().evaluate(value)
