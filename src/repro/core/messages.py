"""``%SQL_MESSAGE`` handling — Section 3.2.2.

"The SQL message section allows customization of error or warning messages
to be printed as a result of a SQL command."  The paper defers rule details
to the Developer's Guide; our concretisation (documented in DESIGN.md):

* a rule is ``code : "text" [: action]``;
* ``code`` matches the error's SQLCODE (integer, sign significant), its
  five-character SQLSTATE, or ``default``;
* matching order: exact SQLCODE, then SQLSTATE, then ``default``;
* ``action`` is ``continue`` (report processing resumes after printing the
  message) or ``exit`` (processing of the report stops; in single
  transaction mode the whole interaction has already been rolled back).

When no rule matches (or the section is absent) the engine prints the
DBMS error in a default format, mirroring "or by printing the DBMS error
message" (Section 4.2), and the action defaults to ``exit``.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Optional

from repro.core.ast import MessageRule, SqlMessageBlock
from repro.core.substitution import Evaluator
from repro.core.variables import VariableStore
from repro.html.entities import escape_html
from repro.errors import SQLError

#: Default action when a SQL statement fails and no rule says otherwise.
DEFAULT_ERROR_ACTION = "exit"

#: Default action for warnings (positive SQLCODE): keep going.
DEFAULT_WARNING_ACTION = "continue"


@dataclass(frozen=True)
class ResolvedMessage:
    """What the engine should emit and do about a SQL error."""

    html: str
    action: str  # "continue" | "exit"
    matched_rule: Optional[MessageRule] = None


def default_error_html(error: SQLError) -> str:
    """The built-in DBMS-error rendering."""
    kind = "warning" if error.is_warning else "error"
    return (
        f'<P><B>SQL {kind} {error.sqlcode} (SQLSTATE {error.sqlstate}):'
        f"</B> {escape_html(str(error))}</P>\n"
    )


def resolve_message(block: Optional[SqlMessageBlock], error: SQLError,
                    store: VariableStore,
                    evaluator: Evaluator, *,
                    default_error_action: str = DEFAULT_ERROR_ACTION
                    ) -> ResolvedMessage:
    """Pick and render the message for a failed/warning SQL statement.

    Before rendering, the error's attributes are published as system
    variables — ``SQL_CODE``, ``SQL_STATE`` and ``SQL_MESSAGE`` — so rule
    text can interpolate them (``"Sorry: $(SQL_MESSAGE)"``).

    ``default_error_action`` is what happens when *no* rule matched an
    error: the paper's behaviour is ``exit``; the engine's graceful-
    degradation mode passes ``continue`` so the rest of the report still
    renders.  An explicit rule's action is always honoured as written.
    """
    store.set_system("SQL_CODE", str(error.sqlcode))
    store.set_system("SQL_STATE", error.sqlstate)
    store.set_system("SQL_MESSAGE", str(error))
    rule = _match_rule(block, error)
    if rule is None:
        action = (DEFAULT_WARNING_ACTION if error.is_warning
                  else default_error_action)
        return ResolvedMessage(default_error_html(error), action)
    html = evaluator.evaluate(rule.text)
    return ResolvedMessage(html, rule.action, matched_rule=rule)


_SQLSTATE_RE = re.compile(r"[0-9a-z]{5}")


def _match_rule(block: Optional[SqlMessageBlock],
                error: SQLError) -> Optional[MessageRule]:
    if block is None:
        return None
    default_rule: Optional[MessageRule] = None
    state_rule: Optional[MessageRule] = None
    for rule in block.rules:
        code = rule.code
        if code == "default":
            if default_rule is None:
                default_rule = rule
            continue
        # A five-character unsigned token is a SQLSTATE (even when all
        # digits, like 42601); signed or other-length numbers are
        # SQLCODEs.  DB2 convention writes error SQLCODEs signed.
        if _SQLSTATE_RE.fullmatch(code):
            if code == error.sqlstate.lower() and state_rule is None:
                state_rule = rule
            continue
        try:
            if int(code) == error.sqlcode:
                return rule  # exact SQLCODE match wins immediately
        except ValueError:
            continue
    return state_rule or default_rule
