"""A standard library of ``%EXEC`` commands.

Section 3.1.4 makes ``%EXEC`` the macro language's escape hatch to "any
program"; the shipped successor grew a set of built-in functions for the
chores macros constantly need (arithmetic, string case, URL escaping).
:func:`standard_exec_runner` provides that set as a safe, registry-backed
runner — no operating-system processes involved.

Commands (arguments are whitespace-separated words after substitution):

=================== ====================================================
``add a b ...``      integer sum of the arguments
``subtract a b``     ``a - b``
``multiply a b ...`` product
``divide a b``       integer division (error code on divide-by-zero)
``compare a op b``   ``1`` if the integer comparison holds, else null
                     (op: lt le eq ne ge gt) — pairs with conditionals
``upper/lower text`` case conversion (rest of line, words re-joined)
``length text``      character count of the joined arguments
``urlescape text``   form-urlencode the joined arguments
``htmlescape text``  HTML-escape the joined arguments
``default a b``      ``a`` if non-empty else ``b``
=================== ====================================================

Every command returns its result as the spliced output; failures (bad
numbers, division by zero) surface as the variable's error code per the
paper's contract, so conditional variables can react.
"""

from __future__ import annotations

from repro.cgi.query_string import encode_component
from repro.core.execvars import RegistryExecRunner
from repro.html.entities import escape_html


def standard_exec_runner(
        base: RegistryExecRunner | None = None) -> RegistryExecRunner:
    """Build (or extend) a runner with the standard command set."""
    runner = base or RegistryExecRunner()

    @runner.register("add")
    def add(args: list[str]) -> str:
        return str(sum(int(a) for a in args))

    @runner.register("subtract")
    def subtract(args: list[str]) -> str:
        a, b = (int(x) for x in args)
        return str(a - b)

    @runner.register("multiply")
    def multiply(args: list[str]) -> str:
        product = 1
        for a in args:
            product *= int(a)
        return str(product)

    @runner.register("divide")
    def divide(args: list[str]) -> str:
        a, b = (int(x) for x in args)
        return str(a // b)

    @runner.register("compare")
    def compare(args: list[str]) -> str:
        a, op, b = args
        left, right = int(a), int(b)
        holds = {
            "lt": left < right,
            "le": left <= right,
            "eq": left == right,
            "ne": left != right,
            "ge": left >= right,
            "gt": left > right,
        }.get(op)
        if holds is None:
            raise ValueError(f"unknown comparison {op!r}")
        return "1" if holds else ""

    @runner.register("upper")
    def upper(args: list[str]) -> str:
        return " ".join(args).upper()

    @runner.register("lower")
    def lower(args: list[str]) -> str:
        return " ".join(args).lower()

    @runner.register("length")
    def length(args: list[str]) -> str:
        return str(len(" ".join(args)))

    @runner.register("urlescape")
    def urlescape(args: list[str]) -> str:
        return encode_component(" ".join(args))

    @runner.register("htmlescape")
    def htmlescape(args: list[str]) -> str:
        return escape_html(" ".join(args))

    @runner.register("default")
    def default(args: list[str]) -> str:
        if args and args[0]:
            return args[0]
        return args[1] if len(args) > 1 else ""

    return runner
