"""Value strings: the unit of text the substitution mechanism operates on.

Everywhere the macro language of the paper carries text — the right-hand
side of a ``%DEFINE`` assignment, the body of a SQL command, the HTML of an
input or report section, a ``%LIST`` separator — that text may embed
*variable references* of the form ``$(varname)`` and *escapes* of the form
``$$(varname)`` (Section 3.1.1).  This module parses such text once into a
:class:`ValueString`, a sequence of typed segments, so the evaluator in
:mod:`repro.core.substitution` never re-scans raw text.

Segment kinds
-------------

``Literal``
    Plain text copied verbatim to the output.
``Reference``
    ``$(name)`` — substituted with the variable's run-time value.
``Escape``
    ``$$(name)`` — the paper's escape: the leading ``$`` is stripped and the
    text ``$(name)`` appears literally in the output of *this* evaluation
    pass.  (Appendix A uses this to hide variables from the end user: the
    literal survives one CGI round trip and is re-parsed as a reference on
    the next.)

Anything else containing ``$`` — a lone dollar, ``$name`` without
parentheses, an unterminated ``$(`` — is treated as literal text.  The
paper never defines those forms, and 1996-era HTML/SQL text is full of
innocent dollar signs.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Iterator, Union

#: Variable names: a letter or underscore followed by alphanumerics,
#: underscores, dots or dashes.  Dots and dashes are included because the
#: implicit report variables of Section 3.2.1 are spelled both
#: ``N_column-name`` and ``N.column-name`` in the paper, and SQL column
#: names may contain either character.
VARNAME_RE = re.compile(r"[A-Za-z_][A-Za-z0-9_.\-]*")

_TOKEN_RE = re.compile(
    r"\$\$\((?P<escaped>[A-Za-z_][A-Za-z0-9_.\-]*)\)"
    r"|\$\((?P<ref>[A-Za-z_][A-Za-z0-9_.\-]*)\)"
)


@dataclass(frozen=True)
class Literal:
    """Plain text emitted verbatim."""

    text: str

    def unparse(self) -> str:
        return self.text


@dataclass(frozen=True)
class Reference:
    """A ``$(name)`` variable reference."""

    name: str

    def unparse(self) -> str:
        return f"$({self.name})"


@dataclass(frozen=True)
class Escape:
    """A ``$$(name)`` escape producing the literal text ``$(name)``."""

    name: str

    def unparse(self) -> str:
        return f"$$({self.name})"


Segment = Union[Literal, Reference, Escape]


class ValueString:
    """A parsed value string: an immutable sequence of segments.

    Instances are hashable and comparable, which the test-suite's
    property-based round-trip checks rely on.
    """

    __slots__ = ("segments", "_raw")

    def __init__(self, segments: tuple[Segment, ...], raw: str):
        self.segments = segments
        self._raw = raw

    # -- construction -------------------------------------------------

    @classmethod
    def parse(cls, text: str) -> "ValueString":
        """Parse raw macro text into a value string.

        The scan is a single left-to-right pass; ``$$(name)`` is matched
        before ``$(name)`` so the escape always wins (the paper's "prefixed
        with another $" rule).
        """
        segments: list[Segment] = []
        pos = 0
        for match in _TOKEN_RE.finditer(text):
            if match.start() > pos:
                segments.append(Literal(text[pos:match.start()]))
            escaped = match.group("escaped")
            if escaped is not None:
                segments.append(Escape(escaped))
            else:
                segments.append(Reference(match.group("ref")))
            pos = match.end()
        if pos < len(text):
            segments.append(Literal(text[pos:]))
        return cls(tuple(segments), text)

    @classmethod
    def literal(cls, text: str) -> "ValueString":
        """Build a value string that is pure literal text (no scanning)."""
        if text:
            return cls((Literal(text),), text)
        return cls((), text)

    # -- inspection ---------------------------------------------------

    @property
    def raw(self) -> str:
        """The original source text, exactly as written in the macro."""
        return self._raw

    def references(self) -> Iterator[str]:
        """Yield the names referenced (not escaped) in this value string."""
        for segment in self.segments:
            if isinstance(segment, Reference):
                yield segment.name

    def escapes(self) -> Iterator[str]:
        """Yield the names appearing in ``$$(name)`` escapes.

        An escape is a *deferred* reference — it becomes ``$(name)`` in
        the output and is typically dereferenced on the next request
        (the hidden-variable idiom) — so tooling that reasons about
        variable usage must see these names too.
        """
        for segment in self.segments:
            if isinstance(segment, Escape):
                yield segment.name

    def has_references(self) -> bool:
        return any(isinstance(s, Reference) for s in self.segments)

    def is_literal_only(self) -> bool:
        return all(isinstance(s, Literal) for s in self.segments)

    def unparse(self) -> str:
        """Reproduce source text equivalent to what was parsed."""
        return "".join(segment.unparse() for segment in self.segments)

    # -- dunder -------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ValueString):
            return NotImplemented
        return self.segments == other.segments

    def __hash__(self) -> int:
        return hash(self.segments)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"ValueString({self._raw!r})"


#: The empty value string, shared since it is requested constantly.
EMPTY = ValueString.literal("")
