"""The paper's primary contribution: the macro language and its engine.

Public surface:

* :func:`parse_macro` — macro source → :class:`MacroFile` AST
* :class:`MacroEngine` / :class:`EngineConfig` / :class:`MacroResult` —
  the DB2 WWW Connection run-time (input and report modes)
* :class:`MacroCommand` — the ``input``/``report`` URL command
* :class:`VariableStore` + :class:`Evaluator` — the cross-language
  variable substitution mechanism, usable standalone
* :class:`MacroLibrary` — named macro storage for the CGI layer
* :class:`ValueString` — the parsed text-with-references unit
* exec runners for ``%EXEC`` variables
"""

from repro.core.ast import MacroFile
from repro.core.lint import Finding, lint_macro
from repro.core.engine import (
    EngineConfig,
    MacroCommand,
    MacroEngine,
    MacroResult,
)
from repro.core.execvars import (
    NullExecRunner,
    RegistryExecRunner,
    SubprocessExecRunner,
)
from repro.core.macrofile import (
    IncludeCycleError,
    MacroLibrary,
    MacroNameError,
    expand_includes,
)
from repro.core.parser import parse_macro
from repro.core.report import ReportGenerator
from repro.core.substitution import Evaluator
from repro.core.values import ValueString
from repro.core.variables import VariableStore

__all__ = [
    "EngineConfig",
    "Finding",
    "IncludeCycleError",
    "expand_includes",
    "lint_macro",
    "Evaluator",
    "MacroCommand",
    "MacroEngine",
    "MacroFile",
    "MacroLibrary",
    "MacroNameError",
    "MacroResult",
    "NullExecRunner",
    "RegistryExecRunner",
    "ReportGenerator",
    "SubprocessExecRunner",
    "ValueString",
    "VariableStore",
    "parse_macro",
]
