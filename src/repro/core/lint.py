"""Static analysis of macro files — the authoring aid of Figure 5.

The paper's development story has application developers writing macros
with ordinary HTML and SQL tools and deploying them onto a live server;
there was no compiler to catch mistakes before the first end user hit
them.  The linter closes that gap: it walks a parsed macro and reports

* references to variables that nothing can define (``E-undefined`` is
  only a *warning*: an undefined variable is legal — it is the null
  string — and may be a client input, but a typo looks exactly like it),
* variables defined but never referenced (dead definitions),
* references that occur in an HTML section *before* the defining
  ``%DEFINE`` (the positional-visibility trap of Section 4.3.1),
* SQL sections no ``%EXEC_SQL`` can ever run,
* macros that execute SQL without defining ``DATABASE``,
* statically detectable circular definitions,
* mode coverage (missing ``%HTML_INPUT``/``%HTML_REPORT``).

Findings are data (:class:`Finding`), so IDE-style tooling and the CLI
can both consume them.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Iterator, Optional

from repro.core import ast
from repro.core.values import ValueString

#: Names the engine itself defines at run time (never "undefined").
_SYSTEM_NAME_RE = re.compile(
    r"^(N\d+|V\d+|[NV][._].+|NLIST|VLIST|ROW_NUM|ROWCOUNT|RPT_MAXROWS"
    r"|START_ROW_NUM|SQL_CODE|SQL_STATE|SQL_MESSAGE|SHOWSQL|DATABASE"
    r"|CONTENT_TYPE)$")

SEVERITIES = ("error", "warning", "info")


@dataclass(frozen=True)
class Finding:
    """One lint finding."""

    severity: str   # "error" | "warning" | "info"
    code: str       # short stable identifier, e.g. "undefined-variable"
    message: str
    line: int = 0

    def render(self, source: Optional[str] = None) -> str:
        where = f"{source or 'macro'}:{self.line}" if self.line \
            else (source or "macro")
        return f"{where}: {self.severity}: {self.code}: {self.message}"


def lint_macro(macro: ast.MacroFile) -> list[Finding]:
    """Analyse a parsed macro; returns findings ordered by line."""
    linter = _Linter(macro)
    linter.run()
    return sorted(linter.findings, key=lambda f: (f.line, f.code))


class _Linter:
    def __init__(self, macro: ast.MacroFile):
        self.macro = macro
        self.findings: list[Finding] = []
        #: name -> first definition line
        self.defined: dict[str, int] = {}
        #: (name, line) of every reference, in document order
        self.references: list[tuple[str, int]] = []
        #: names of form controls in %HTML_INPUT — the client defines
        #: these at run time, so referencing them is not a typo
        self.client_names: set[str] = set()
        self.escaped_names: set[str] = set()
        self.has_variable_exec_sql = False

    def add(self, severity: str, code: str, message: str,
            line: int = 0) -> None:
        self.findings.append(Finding(severity, code, message, line))

    # ------------------------------------------------------------------

    def run(self) -> None:
        self._collect()
        self._check_mode_coverage()
        self._check_sql_reachability()
        self._check_database_variable()
        self._check_reference_resolution()
        self._check_unused_definitions()
        self._check_static_cycles()

    # -- collection -------------------------------------------------------

    def _collect(self) -> None:
        for section in self.macro.sections:
            if isinstance(section, ast.DefineSection):
                for statement in section.statements:
                    self._collect_statement(statement)
            elif isinstance(section, ast.SqlSection):
                self._note_refs(section.command, section.line)
                if section.report is not None:
                    self._note_refs(section.report.header,
                                    section.report.line)
                    if section.report.row is not None:
                        self._note_refs(section.report.row.template,
                                        section.report.row.line)
                    self._note_refs(section.report.footer,
                                    section.report.line)
                if section.message is not None:
                    for rule in section.message.rules:
                        self._note_refs(rule.text, rule.line)
            elif isinstance(section, ast.HtmlInputSection):
                self._note_refs(section.body, section.line)
                self._collect_client_names(section)
            elif isinstance(section, ast.HtmlReportSection):
                for piece in section.pieces:
                    if isinstance(piece, ast.ExecSqlDirective):
                        if piece.name is not None and \
                                piece.name.has_references():
                            self.has_variable_exec_sql = True
                            self._note_refs(piece.name, piece.line)
                    else:
                        self._note_refs(piece, section.line)
            elif isinstance(section, ast.IncludeSection):
                self.add("info", "unexpanded-include",
                         f'%INCLUDE "{section.name}" not expanded; lint '
                         "the library-loaded macro for whole-program "
                         "checks", section.line)

    def _collect_statement(self, statement: ast.DefineStatement) -> None:
        self.defined.setdefault(statement.name, statement.line)
        if isinstance(statement, ast.SimpleAssignment):
            self._note_refs(statement.value, statement.line)
        elif isinstance(statement, ast.ConditionalAssignment):
            self._note_refs(statement.then_value, statement.line)
            if statement.else_value is not None:
                self._note_refs(statement.else_value, statement.line)
            if statement.test_name is not None:
                self.references.append(
                    (statement.test_name, statement.line))
        elif isinstance(statement, ast.ListDeclaration):
            self._note_refs(statement.separator, statement.line)
        elif isinstance(statement, ast.ExecDeclaration):
            self._note_refs(statement.command, statement.line)

    def _note_refs(self, value: ValueString, line: int) -> None:
        for name in value.references():
            self.references.append((name, line))
        for name in value.escapes():
            # A $$(name) escape is a deferred reference (the hidden-
            # variable idiom): the name counts as used, but not as a
            # same-request reference for ordering checks.
            self.escaped_names.add(name)

    def _collect_client_names(self, section: ast.HtmlInputSection) -> None:
        """Form control names: variables the Web client will supply."""
        from repro.html.forms import extract_forms
        from repro.html.parser import parse_html
        document = parse_html(section.body.raw)
        for form in extract_forms(document):
            self.client_names.update(form.control_names())

    # -- checks ------------------------------------------------------------

    def _check_mode_coverage(self) -> None:
        if self.macro.html_input is None:
            self.add("info", "no-input-section",
                     "macro has no %HTML_INPUT section; input-mode "
                     "requests will fail")
        if self.macro.html_report is None:
            self.add("info", "no-report-section",
                     "macro has no %HTML_REPORT section; report-mode "
                     "requests will fail")

    def _check_sql_reachability(self) -> None:
        report = self.macro.html_report
        directives = (report.exec_sql_directives()
                      if report is not None else [])
        has_unnamed = any(d.name is None for d in directives)
        static_names = {d.name.raw for d in directives
                        if d.name is not None
                        and not d.name.has_references()}
        for section in self.macro.sql_sections():
            if section.name is None:
                if not has_unnamed:
                    self.add("warning", "unreachable-sql",
                             "unnamed SQL section but the report has no "
                             "unnamed %EXEC_SQL", section.line)
            elif section.name not in static_names and \
                    not self.has_variable_exec_sql:
                self.add("warning", "unreachable-sql",
                         f"SQL section {section.name!r} is never "
                         "executed by any %EXEC_SQL", section.line)
        if directives and not self.macro.sql_sections():
            self.add("error", "exec-sql-without-sections",
                     "%EXEC_SQL present but the macro has no SQL "
                     "sections",
                     directives[0].line)

    def _check_database_variable(self) -> None:
        if self.macro.sql_sections() and "DATABASE" not in self.defined:
            self.add("warning", "no-database-variable",
                     "macro executes SQL but never defines DATABASE; "
                     "the engine needs a default_database")

    def _check_reference_resolution(self) -> None:
        reported: set[str] = set()
        for name, line in self.references:
            if name in self.defined or name in self.client_names \
                    or _SYSTEM_NAME_RE.match(name):
                continue
            if name in reported:
                continue
            reported.add(name)
            self.add("warning", "undefined-variable",
                     f"$({name}) is never defined in the macro; if it "
                     "is not an HTML input variable it evaluates to "
                     "the null string", line)
        # Positional-visibility trap: used in an HTML section before
        # its %DEFINE (Section 4.3.1 makes such a reference null).
        for section in self.macro.sections:
            if isinstance(section, ast.HtmlInputSection):
                self._check_forward_refs(section.body, section.line)
            elif isinstance(section, ast.HtmlReportSection):
                for piece in section.pieces:
                    if isinstance(piece, ast.ValueString):
                        self._check_forward_refs(piece, section.line)

    def _check_forward_refs(self, value: ValueString, line: int) -> None:
        for name in value.references():
            defined_at = self.defined.get(name)
            if defined_at is not None and defined_at > line:
                self.add("warning", "defined-after-use",
                         f"$({name}) is emitted at line {line} but "
                         f"defined at line {defined_at}; top-to-bottom "
                         "processing makes it null here "
                         "(Section 4.3.1)", line)

    def _check_unused_definitions(self) -> None:
        referenced = {name for name, _ in self.references}
        referenced |= self.escaped_names
        for name, line in self.defined.items():
            if name in referenced or _SYSTEM_NAME_RE.match(name):
                continue
            self.add("info", "unused-variable",
                     f"{name} is defined but never referenced", line)

    def _check_static_cycles(self) -> None:
        graph: dict[str, set[str]] = {}
        for section in self.macro.sections:
            if not isinstance(section, ast.DefineSection):
                continue
            for statement in section.statements:
                if isinstance(statement, ast.SimpleAssignment):
                    graph.setdefault(statement.name, set()).update(
                        statement.value.references())
        for name in graph:
            cycle = _find_cycle(graph, name)
            if cycle is not None:
                self.add("error", "circular-definition",
                         "circular variable definition: "
                         + " -> ".join(cycle),
                         self.defined.get(name, 0))
                return  # one report is enough


def _find_cycle(graph: dict[str, set[str]],
                start: str) -> Optional[list[str]]:
    path: list[str] = []
    seen: set[str] = set()

    def visit(node: str) -> Optional[list[str]]:
        if node in path:
            return path[path.index(node):] + [node]
        if node in seen:
            return None
        seen.add(node)
        path.append(node)
        for neighbour in graph.get(node, ()):
            found = visit(neighbour)
            if found is not None:
                return found
        path.pop()
        return None

    return visit(start)


def iter_rendered(findings: list[Finding],
                  source: Optional[str] = None) -> Iterator[str]:
    for finding in findings:
        yield finding.render(source)
