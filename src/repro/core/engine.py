"""The DB2 WWW Connection run-time engine — Section 4 of the paper.

:class:`MacroEngine` processes a parsed macro in one of the two modes of
Figure 6:

* **input mode** (``{cmd} = "input"``): "processes only the variable
  definition sections (DEFINE sections) and HTML input section of the
  macro ... The HTML report section and any SQL sections ... are
  completely ignored" (Section 4.1);
* **report mode** (``{cmd} = "report"``): like input mode "except the HTML
  report section gets processed ... In addition ... processing execute SQL
  statements" (Section 4.2).

Processing is strictly top-to-bottom ("macros are processed from beginning
to end"), which yields the paper's positional-visibility behaviour: a
variable defined *after* the HTML section being emitted is still undefined
(null) while that section prints — the Section 4.3.1 lazy-evaluation
example, and the reason Appendix A can hide ``hidden_a``/``hidden_b`` from
the input form.
"""

from __future__ import annotations

import enum
import time
from dataclasses import dataclass, field
from typing import Iterator, Optional, Sequence

from repro.core import ast
from repro.core.messages import resolve_message
from repro.core.report import ReportGenerator, RowRenderer
from repro.core.substitution import Evaluator
from repro.core.variables import VariableStore
from repro.errors import (
    CircuitOpenError,
    DeadlineExceededError,
    MacroExecutionError,
    MissingSectionError,
    PoolExhaustedError,
    ReadOnlySqlError,
    SQLError,
    UnknownSqlSectionError,
    is_transient,
)
from repro.html.entities import escape_html
from repro.obs.trace import TRACER, Span
from repro.resilience.deadline import Deadline
from repro.resilience.retry import RetryPolicy, call_with_retry
from repro.sql.dialect import is_cacheable_query
from repro.sql.gateway import DatabaseRegistry, MacroSqlSession
from repro.sql.querycache import QueryResultCache
from repro.sql.transactions import TransactionMode


class MacroCommand(enum.Enum):
    """The ``{cmd}`` component of a DB2WWW URL (Section 4)."""

    INPUT = "input"
    REPORT = "report"

    @classmethod
    def parse(cls, text: str) -> "MacroCommand":
        folded = text.strip().lower()
        for command in cls:
            if folded == command.value:
                return command
        raise MacroExecutionError(
            f"unknown command {text!r}: expected 'input' or 'report'")


@dataclass
class EngineConfig:
    """Tunable behaviour of the engine.

    ``transaction_mode``
        Section 5's auto-commit vs single-transaction grouping.
    ``escape_report_values``
        HTML-escape column values substituted into custom ``%ROW``
        templates (hardening; off by default for paper fidelity).
    ``default_database``
        Database used when a macro defines no ``DATABASE`` variable.
    ``show_sql_variable``
        Name of the flag variable that, when non-null, echoes each SQL
        statement into the report (the ``SHOWSQL`` radio button of the
        paper's Figures 2 and 7).
    ``compiled_reports``
        Render ``%ROW`` templates that reference only implicit report
        variables through the compiled fast path (on by default; the
        interpreted evaluator is always used for anything it cannot
        prove equivalent — see :mod:`repro.core.compiled`).
    ``query_cache``
        A shared :class:`~repro.sql.querycache.QueryResultCache`; when
        set, identical SELECTs are served from cache until a write to
        the same database bumps its generation.  ``None`` (default)
        disables result reuse.  Share one instance across engines to
        share its budget — cache stamps embed each write counter's
        identity, so engines with *separate* registries stay correct
        even when database names collide (they contend for the same
        cache keys, though, so engines meant to share results should
        share a :class:`~repro.sql.gateway.DatabaseRegistry`).
        Bypassed automatically in ``SINGLE`` transaction mode.
    ``retry_policy``
        When set, transient failures of idempotent reads (and of
        connection establishment) are retried with exponential backoff
        and jitter (see :mod:`repro.resilience.retry`).  ``None``
        (default) keeps the paper's fail-on-first-error behaviour.
    ``request_deadline``
        Per-invocation time budget in seconds; the retry loop, pool
        acquisition and statement dispatch all honour it, surfacing
        :class:`~repro.errors.DeadlineExceededError` once spent.
    ``read_only``
        When true, any statement other than a read (``SELECT``,
        ``VALUES``, ``WITH``) is rejected with
        :class:`~repro.errors.ReadOnlySqlError` (SQLSTATE 42501)
        *before* a connection is acquired — the check runs on the
        substituted SQL text, so a read-only tenant cannot occupy pool
        slots with doomed writes.  The error propagates to the caller
        (it is an authorization failure, not report content).
    ``degrade_sql_errors``
        Graceful report degradation: when a SQL section fails terminally
        and no ``%SQL_MESSAGE`` rule matched, emit the default error
        block and *continue* the rest of the ``%HTML_REPORT`` instead of
        aborting the page.  Off by default — the paper's default action
        is ``exit`` — but recommended for production serving, where half
        a report beats a dead page.  (Single-transaction mode still
        aborts: the rollback already undid the interaction, Section 5.)
    """

    transaction_mode: TransactionMode = TransactionMode.AUTO_COMMIT
    escape_report_values: bool = False
    default_database: Optional[str] = None
    show_sql_variable: str = "SHOWSQL"
    compiled_reports: bool = True
    query_cache: Optional[QueryResultCache] = None
    retry_policy: Optional[RetryPolicy] = None
    request_deadline: Optional[float] = None
    read_only: bool = False
    degrade_sql_errors: bool = False


@dataclass
class MacroResult:
    """The outcome of one macro invocation."""

    html: str
    command: MacroCommand
    statements: list[str] = field(default_factory=list)
    sql_errors: list[SQLError] = field(default_factory=list)
    aborted: bool = False
    #: Transparent statement/connect retries performed for this page.
    retries: int = 0
    #: Query rows fetched across every SQL section (printed or not) —
    #: what a per-tenant row quota charges for.  Final once the page
    #: (or stream) is complete.
    rows: int = 0
    #: Media type for the generated page.  Macros may override the
    #: default by defining a ``CONTENT_TYPE`` variable — Section 2.1
    #: notes servers return "special types of data other than HTML",
    #: and a CSV or plain-text report is just a different template.
    content_type: str = "text/html"

    @property
    def ok(self) -> bool:
        return not self.sql_errors and not self.aborted


@dataclass
class MacroStream:
    """A macro invocation rendered as a chunk stream.

    ``chunks`` yields the page incrementally — first byte out as soon as
    the first HTML piece is evaluated, SQL rows rendered straight off the
    live cursor.  ``result`` is the same object the buffered path
    returns; its ``statements``/``sql_errors``/``retries`` fields fill in
    as the stream advances and are final once ``chunks`` is exhausted
    (``result.html`` stays empty — the chunks *are* the page).
    ``result.content_type`` is valid as soon as the first chunk has been
    produced, so a transport can emit headers before the body.
    """

    chunks: Iterator[str]
    result: MacroResult


def _should_propagate(error: SQLError) -> bool:
    """Errors that should become 503/504 responses, not report content."""
    return isinstance(error, (CircuitOpenError, PoolExhaustedError,
                              DeadlineExceededError))


class MacroEngine:
    """Executes macros against a database registry.

    One engine instance serves many requests (it is stateless between
    invocations); each :meth:`execute` call builds a fresh
    :class:`VariableStore` seeded with that request's client inputs, as
    the CGI process model of Figure 4 implies.
    """

    def __init__(self, registry: Optional[DatabaseRegistry] = None, *,
                 config: Optional[EngineConfig] = None, exec_runner=None):
        self.registry = registry or DatabaseRegistry()
        self.config = config or EngineConfig()
        self.exec_runner = exec_runner

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------

    def execute(self, macro: ast.MacroFile,
                command: MacroCommand | str,
                client_inputs: Sequence[tuple[str, str]] = (), *,
                row_renderer: Optional[RowRenderer] = None) -> MacroResult:
        """Process ``macro`` in ``command`` mode with the given inputs.

        ``client_inputs`` are the HTML input variables of Section 2.2, in
        arrival order (repeats become list variables).  Returns a
        :class:`MacroResult` whose ``html`` is the generated page body.

        ``row_renderer`` swaps the presentation layer (e.g. the JSON
        API) while keeping execution identical; ``None`` — the default —
        is the paper's HTML pipeline, byte for byte.
        """
        if isinstance(command, str):
            command = MacroCommand.parse(command)
        run = _MacroRun(self, macro, command, client_inputs,
                        row_renderer=row_renderer)
        return run.execute()

    def execute_input(self, macro: ast.MacroFile,
                      client_inputs: Sequence[tuple[str, str]] = ()) -> MacroResult:
        return self.execute(macro, MacroCommand.INPUT, client_inputs)

    def execute_report(self, macro: ast.MacroFile,
                       client_inputs: Sequence[tuple[str, str]] = ()) -> MacroResult:
        return self.execute(macro, MacroCommand.REPORT, client_inputs)

    def execute_stream(self, macro: ast.MacroFile,
                       command: MacroCommand | str,
                       client_inputs: Sequence[tuple[str, str]] = (), *,
                       row_renderer: Optional[RowRenderer] = None
                       ) -> MacroStream:
        """Process ``macro`` as an incremental chunk stream.

        Identical processing to :meth:`execute` — the buffered path is
        literally the join of this stream — except that SQL result rows
        ride the live cursor instead of being fetched up front, so first
        byte latency and peak memory stay flat as reports grow.  Query
        results consumed this way bypass the query cache (their rows
        stream once).  Errors raised before the first chunk surface
        exactly as in :meth:`execute`; after that they propagate from
        the iterator mid-stream.
        """
        if isinstance(command, str):
            command = MacroCommand.parse(command)
        run = _MacroRun(self, macro, command, client_inputs,
                        stream_rows=True, row_renderer=row_renderer)
        return MacroStream(chunks=run.stream(), result=run.result)

    def execute_report_stream(self, macro: ast.MacroFile,
                              client_inputs: Sequence[tuple[str, str]] = ()
                              ) -> MacroStream:
        return self.execute_stream(macro, MacroCommand.REPORT,
                                   client_inputs)


class _MacroRun:
    """State for one macro invocation (kept off the engine for clarity)."""

    def __init__(self, engine: MacroEngine, macro: ast.MacroFile,
                 command: MacroCommand,
                 client_inputs: Sequence[tuple[str, str]], *,
                 stream_rows: bool = False,
                 row_renderer: Optional[RowRenderer] = None):
        self.engine = engine
        self.macro = macro
        self.command = command
        self.store = VariableStore()
        self.store.set_client_inputs(list(client_inputs))
        self.evaluator = Evaluator(self.store,
                                   exec_runner=engine.exec_runner)
        self.row_renderer = row_renderer
        #: Structured renderers (JSON) own the byte stream: macro free
        #: text, SHOWSQL echoes and error blocks are evaluated for their
        #: variable-visibility side effects but not emitted.
        self._suppress_text = (row_renderer is not None
                               and row_renderer.suppress_free_text)
        self.reporter = ReportGenerator(
            self.store, self.evaluator,
            escape_values=engine.config.escape_report_values,
            compile_templates=engine.config.compiled_reports,
            row_renderer=row_renderer)
        #: When true, SQL results ride the live cursor (streaming mode).
        self.stream_rows = stream_rows
        self.session: Optional[MacroSqlSession] = None
        self.deadline = (Deadline.after(engine.config.request_deadline)
                         if engine.config.request_deadline is not None
                         else None)
        self.result = MacroResult(html="", command=command)
        self._emitted_target_section = False
        #: the run's single ``substitute`` span (created lazily); see
        #: :meth:`_substitute`.
        self._subst_span: Optional[Span] = None
        # SQL sections are registered macro-wide up front: the directive
        # semantics of Section 3.4 ("all unnamed SQL sections are executed
        # sequentially, in the order of appearance in the macro") are not
        # positional, unlike variable definitions.
        self.unnamed_sql = macro.unnamed_sql_sections()
        self.named_sql = {s.name: s for s in macro.sql_sections()
                          if s.name is not None}

    # ------------------------------------------------------------------

    def execute(self) -> MacroResult:
        out = list(self.stream())
        self.result.html = "".join(out)
        return self.result

    def stream(self) -> Iterator[str]:
        """The page as a chunk generator (the single processing path).

        The buffered :meth:`execute` joins this stream; the streaming
        transports forward it chunk by chunk.  Session finalisation runs
        even when the consumer abandons the iterator early.
        """
        try:
            yield from self._walk()
        finally:
            if self.session is not None:
                self.session.finish(success=not self.result.aborted
                                    and not self.session.failed)
                self.result.retries += self.session.retries
            self.engine.registry.record_retries(self.result.retries)
        if not self._emitted_target_section:
            needed = ("%HTML_INPUT" if self.command is MacroCommand.INPUT
                      else "%HTML_REPORT")
            raise MissingSectionError(
                f"macro has no {needed} section required by "
                f"{self.command.value} mode")
        if self.row_renderer is not None:
            yield from self.row_renderer.finish()
        self._refresh_content_type()

    def _refresh_content_type(self) -> None:
        if (self.row_renderer is not None
                and self.row_renderer.content_type):
            self.result.content_type = self.row_renderer.content_type
            return
        declared = self.evaluator.evaluate_name("CONTENT_TYPE").strip()
        if declared:
            self.result.content_type = declared

    def _walk(self) -> Iterator[str]:
        for section in self.macro.sections:
            if isinstance(section, ast.DefineSection):
                self.store.apply_section(section)
            elif isinstance(section, ast.HtmlInputSection):
                if self.command is MacroCommand.INPUT:
                    self._emitted_target_section = True
                    self._refresh_content_type()
                    chunk = self._substitute(section.body)
                    if not self._suppress_text:
                        yield chunk
            elif isinstance(section, ast.HtmlReportSection):
                if self.command is MacroCommand.REPORT:
                    self._emitted_target_section = True
                    # Streaming transports read the content type off the
                    # result as soon as the first chunk arrives; pin it
                    # before anything is emitted (the end-of-run refresh
                    # still wins for the buffered path).
                    self._refresh_content_type()
                    if (yield from self._process_report(section)):
                        return  # an 'exit' action stopped processing
            elif isinstance(section, ast.IncludeSection):
                raise MacroExecutionError(
                    f"unexpanded %INCLUDE \"{section.name}\": load this "
                    "macro through a MacroLibrary so includes resolve")
            # SQL sections were pre-registered; FreeText is ignored.

    # ------------------------------------------------------------------
    # Report mode
    # ------------------------------------------------------------------

    def _process_report(self,
                        section: ast.HtmlReportSection) -> Iterator[str]:
        """Emit the report section; returns True when 'exit' stopped it."""
        for piece in section.pieces:
            if isinstance(piece, ast.ExecSqlDirective):
                if (yield from self._run_directive(piece)):
                    return True
            else:
                chunk = self._substitute(piece)
                if not self._suppress_text:
                    yield chunk
        return False

    def _substitute(self, node) -> str:
        """Evaluate a template node under the run's ``substitute`` span.

        Substitution runs once per free-text piece; a span per piece
        would dominate both the trace and the overhead budget, so the
        whole run shares one span whose duration is the *accumulated*
        evaluation time (the same accrued-clock idiom as the streaming
        ``report.render`` span).
        """
        span = self._subst_span
        if span is None:
            span = self._subst_span = TRACER.leaf("substitute")
            if span is not None:
                span.end = span.start
        if span is None:
            return self.evaluator.evaluate(node)
        tick = time.perf_counter()
        try:
            return self.evaluator.evaluate(node)
        finally:
            span.end += time.perf_counter() - tick

    def _run_directive(self,
                       directive: ast.ExecSqlDirective) -> Iterator[str]:
        """Run one %EXEC_SQL; returns True when processing must stop."""
        sections = self._resolve_directive(directive)
        for sql_section in sections:
            if (yield from self._run_sql_section(sql_section)):
                return True
            if self.session is not None and self.session.failed:
                # Single-transaction mode: everything was rolled back;
                # no further statements may run (Section 5), even when
                # the matched %SQL_MESSAGE rule said "continue".
                self.result.aborted = True
                return True
        return False

    def _resolve_directive(
            self, directive: ast.ExecSqlDirective) -> list[ast.SqlSection]:
        if directive.name is None:
            return list(self.unnamed_sql)
        name = self.evaluator.evaluate(directive.name).strip()
        section = self.named_sql.get(name)
        if section is None:
            raise UnknownSqlSectionError(
                f"%EXEC_SQL({directive.name.raw}) resolved to {name!r}, "
                "which names no SQL section in this macro")
        return [section]

    def _run_sql_section(self, section: ast.SqlSection) -> Iterator[str]:
        """Execute one SQL section; returns True when processing must stop.

        Terminal SQL failures degrade, not crash: the section's
        ``%SQL_MESSAGE`` (or the default error block) is emitted, and
        the report continues per the matched rule's action.  Under
        ``degrade_sql_errors`` the *default* action (no rule matched)
        becomes ``continue``; an explicit ``exit`` rule is always
        honoured.  Failures to even *reach* the database (breaker open,
        pool exhausted, connect refused) are handled the same way, so
        one dead backend costs one error block, not the whole page.
        """
        sql_text = self.evaluator.evaluate(section.command).strip()
        if self.engine.config.read_only \
                and not is_cacheable_query(sql_text):
            # Authorization, not report content: raised before the
            # session (and therefore any pool slot) exists, and outside
            # the %SQL_MESSAGE machinery so it reaches the HTTP layer.
            raise ReadOnlySqlError(
                f"write rejected: this engine is read-only "
                f"(statement began {sql_text.split(None, 1)[0]!r} "
                f"when only SELECT/VALUES/WITH are allowed)")
        yield from self._maybe_show_sql(sql_text)
        try:
            session = self._ensure_session()
            result = session.execute(sql_text,
                                     stream=self.stream_rows)
        except SQLError as error:
            return (yield from self._emit_sql_error(section, error))
        self.result.statements.append(sql_text)
        try:
            yield from self._render_section(section, result)
        except SQLError as error:
            # Streaming rides the live cursor, so a fetch failure can
            # surface mid-render; the buffered path never reaches here
            # (execute() drains the cursor above).
            return (yield from self._emit_sql_error(section, error))
        if result.is_query:
            # Valid only after the render loop drained the cursor.
            self.result.rows += result.row_total
        return False

    def _render_section(self, section: ast.SqlSection,
                        result) -> Iterator[str]:
        """Render the section's report, under a ``report.render`` span.

        The span measures *production* time only: the clock runs while a
        chunk is being rendered and stops across each ``yield``, so a
        slow consumer (network sends on the streaming path) cannot
        inflate the rendering phase.
        """
        inner = self.reporter.render_iter(section, result)
        parent = TRACER.current() if TRACER.enabled else None
        if parent is None:
            yield from inner
            return
        span = Span("report.render", parent.trace_id, parent.span_id)
        parent.add_child(span)
        if not self.stream_rows:
            # Buffered path: execute() drains the stream immediately, so
            # wall time *is* production time — skip the per-chunk clock.
            try:
                yield from inner
            finally:
                span.finish()
            return
        active = 0.0
        try:
            while True:
                tick = time.perf_counter()
                try:
                    chunk = next(inner)
                except StopIteration:
                    active += time.perf_counter() - tick
                    break
                active += time.perf_counter() - tick
                yield chunk
        finally:
            span.end = span.start + active

    def _emit_sql_error(self, section: ast.SqlSection,
                        error: SQLError) -> Iterator[str]:
        """Emit the section's error block; True when processing stops."""
        degrade = self.engine.config.degrade_sql_errors
        message = resolve_message(
            section.message, error, self.store, self.evaluator,
            default_error_action="continue" if degrade else "exit")
        if message.matched_rule is None and _should_propagate(error):
            # Unavailability is a transport condition, not page
            # content: unless a %SQL_MESSAGE rule claimed it, let
            # the HTTP layer answer 503 + Retry-After (or 504).
            raise error
        self.result.sql_errors.append(error)
        if not self._suppress_text:
            yield message.html
        failed = self.session is not None and self.session.failed
        if message.action == "exit" or failed:
            self.result.aborted = True
            return True
        return False

    def _maybe_show_sql(self, sql_text: str) -> Iterator[str]:
        flag = self.engine.config.show_sql_variable
        if self._suppress_text:
            return
        if flag and self.evaluator.evaluate_name(flag) != "":
            yield f"<P><TT>{escape_html(sql_text)}</TT></P>\n"

    def _ensure_session(self) -> MacroSqlSession:
        if self.session is None:
            database = self.evaluator.evaluate_name("DATABASE")
            if not database:
                database = self.engine.config.default_database or ""
            if not database:
                raise MacroExecutionError(
                    "macro executed SQL but defines no DATABASE variable "
                    "and the engine has no default_database")
            shard_map = self.engine.registry.shard_map(database)
            if shard_map is not None:
                # A logical sharded database: the macro's shard-key
                # variable (SHARD_KEY unless the map renames it) pins
                # the request to one shard; without it, reads scatter
                # and writes fan out (see repro.sql.sharding).
                from repro.sql.sharding import ShardedSqlSession
                key = self.evaluator.evaluate_name(shard_map.key_variable)
                # Shard maps name physical databases, so the sharded
                # session always runs against the physical registry
                # (identity for an unscoped one).
                self.session = ShardedSqlSession(
                    self.engine.registry.physical(), shard_map,
                    shard_key=key or None,
                    mode=self.engine.config.transaction_mode,
                    cache=self.engine.config.query_cache,
                    retry=self.engine.config.retry_policy,
                    deadline=self.deadline,
                    degrade=self.engine.config.degrade_sql_errors)
                return self.session
            connection = self._connect(database)
            # Cache keys carry the *resolved* name: a scoped (tenant)
            # registry prefixes its namespace here, so two tenants'
            # identical SELECTs against databases that share a logical
            # name can never serve each other's rows.
            self.session = MacroSqlSession(
                connection, mode=self.engine.config.transaction_mode,
                cache=self.engine.config.query_cache,
                database=self.engine.registry.resolve(database),
                retry=self.engine.config.retry_policy,
                deadline=self.deadline)
        return self.session

    def _connect(self, database: str):
        """Open the request's connection, retrying transient failures.

        Connection establishment is idempotent, so it is retried under
        the engine's policy even though writes never are.  Breaker-open
        rejections *are* transient but deliberately fail fast here — the
        breaker exists to shed load, retrying against it immediately
        would defeat that.
        """
        registry = self.engine.registry
        policy = self.engine.config.retry_policy
        if policy is None:
            return registry.connect(database, deadline=self.deadline)

        def attempt():
            return registry.connect(database, deadline=self.deadline)

        def count_retry(_attempt, _error, _delay):
            self.result.retries += 1

        return call_with_retry(
            attempt, policy=policy, deadline=self.deadline,
            is_retryable=lambda exc: (is_transient(exc)
                                      and not isinstance(exc,
                                                         CircuitOpenError)),
            on_retry=count_retry)
