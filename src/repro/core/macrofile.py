"""Macro storage: loading, caching and naming of macro files.

"The application developer creates HTML forms and SQL commands, and stores
them in files (called macros) at the Web server" (Section 1).  The
:class:`MacroLibrary` is that store: macros are looked up by the
``{macro-file}`` component of a DB2WWW URL, read from a directory and/or
registered programmatically, parsed once and cached (with modification
-time invalidation for on-disk files, since 1996 developers edited macros
in place under a running server).
"""

from __future__ import annotations

import os
import re
import time
from pathlib import Path
from typing import Optional

from typing import Callable

from repro.core.ast import (
    HtmlInputSection,
    HtmlReportSection,
    IncludeSection,
    MacroFile,
    SqlSection,
)
from repro.core.parser import parse_macro
from repro.errors import DuplicateSectionError, MacroError
from repro.obs.trace import TRACER

#: Macro names must be simple file names — no path separators and no
#: parent references.  This is the gateway's path-traversal defence; the
#: 1996 CGI world was full of ``../../etc/passwd`` URLs.
_SAFE_NAME_RE = re.compile(r"^[A-Za-z0-9][A-Za-z0-9._\-]*$")

#: Conventional extension for DB2 WWW macro files (the paper's example
#: URLs use ``urlquery.d2w``).
MACRO_EXTENSION = ".d2w"


class MacroNameError(MacroError):
    """The requested macro name is unsafe or unknown."""


def validate_macro_name(name: str) -> str:
    """Validate a macro name from a URL; returns the name unchanged."""
    if not _SAFE_NAME_RE.match(name) or ".." in name:
        raise MacroNameError(f"illegal macro name {name!r}")
    return name


class MacroLibrary:
    """A collection of named macros, disk-backed and/or in-memory.

    In-memory registrations (``add_text``) shadow same-named disk files,
    which keeps tests hermetic while allowing a real macro directory in
    deployment.
    """

    def __init__(self, root: Optional[str | Path] = None, *,
                 stat_ttl: float = 0.0):
        self.root = Path(root) if root is not None else None
        #: Seconds during which a cached disk macro is served without
        #: re-``stat``-ing the file.  0 (the default) checks the mtime on
        #: every load — the faithful edit-in-place behaviour; a serving
        #: deployment sets a short TTL (e.g. 1s) so hot macros cost a
        #: dict lookup per request instead of filesystem calls.
        self.stat_ttl = stat_ttl
        self._memory: dict[str, MacroFile] = {}
        # name -> (mtime, last_stat_monotonic, parsed macro)
        self._disk_cache: dict[str, tuple[float, float, MacroFile]] = {}

    # -- registration ------------------------------------------------------

    def add_text(self, name: str, text: str) -> MacroFile:
        """Register macro source under ``name`` (parsed immediately)."""
        validate_macro_name(name)
        macro = parse_macro(text, source=name)
        self._memory[name] = macro
        return macro

    def add_macro(self, name: str, macro: MacroFile) -> None:
        validate_macro_name(name)
        self._memory[name] = macro

    # -- lookup ---------------------------------------------------------

    def __contains__(self, name: str) -> bool:
        try:
            validate_macro_name(name)
        except MacroNameError:
            return False
        if name in self._memory:
            return True
        return self._disk_path(name) is not None

    def names(self) -> list[str]:
        found = set(self._memory)
        if self.root is not None and self.root.is_dir():
            for path in self.root.iterdir():
                if path.is_file():
                    found.add(path.name)
        return sorted(found)

    def load(self, name: str, *, expand: bool = True) -> MacroFile:
        """Load a macro by name; raises :class:`MacroNameError` if absent.

        ``%INCLUDE`` sections are resolved (recursively, against this
        library) unless ``expand=False``.
        """
        macro = self._load_raw(name)
        if expand and macro.includes():
            macro = expand_includes(
                macro, lambda included: self._load_raw(included))
        return macro

    def _load_raw(self, name: str) -> MacroFile:
        validate_macro_name(name)
        if name in self._memory:
            return self._memory[name]
        cached = self._disk_cache.get(name)
        now = time.monotonic()
        if (cached is not None and self.stat_ttl > 0
                and now - cached[1] < self.stat_ttl):
            return cached[2]
        path = self._disk_path(name)
        if path is None:
            raise MacroNameError(f"no such macro: {name!r}")
        mtime = os.stat(path).st_mtime
        if cached is not None and cached[0] == mtime:
            self._disk_cache[name] = (mtime, now, cached[2])
            return cached[2]
        with TRACER.span("parse") as span:
            span.set("macro", name)
            macro = parse_macro(path.read_text(encoding="utf-8"),
                                source=str(path))
        self._disk_cache[name] = (mtime, now, macro)
        return macro

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------

    def _disk_path(self, name: str) -> Optional[Path]:
        if self.root is None:
            return None
        candidate = self.root / name
        if candidate.is_file():
            return candidate
        # Allow the extension to be implied, as the DB2WWW URLs did.
        with_ext = self.root / (name + MACRO_EXTENSION)
        if with_ext.is_file():
            return with_ext
        return None


class IncludeCycleError(MacroError):
    """A chain of %INCLUDE directives loops back on itself."""

    def __init__(self, chain: list[str]):
        self.chain = list(chain)
        super().__init__("circular %INCLUDE: " + " -> ".join(self.chain))


def expand_includes(macro: MacroFile,
                    loader: Callable[[str], MacroFile],
                    *, _stack: Optional[list[str]] = None) -> MacroFile:
    """Resolve every ``%INCLUDE`` by splicing the included sections.

    ``loader`` maps an include name to its (unexpanded) macro.  The
    expansion is recursive with cycle detection, and the merged result is
    re-validated: the whole expanded macro must still have at most one
    ``%HTML_INPUT``/``%HTML_REPORT`` section, unique named SQL sections
    and at most one unnamed ``%EXEC_SQL``.
    """
    if _stack is not None:
        stack = list(_stack)
    elif macro.source is not None:
        stack = [macro.source]
    else:
        stack = []
    expanded = MacroFile(source=macro.source)
    for section in macro.sections:
        if not isinstance(section, IncludeSection):
            expanded.sections.append(section)
            continue
        if section.name in stack:
            raise IncludeCycleError(stack + [section.name])
        included = loader(section.name)
        inner = expand_includes(included, loader,
                                _stack=stack + [section.name])
        expanded.sections.extend(inner.sections)
    _validate_expanded(expanded)
    return expanded


def _validate_expanded(macro: MacroFile) -> None:
    """Cross-file constraints after include expansion."""
    if sum(isinstance(s, HtmlInputSection) for s in macro.sections) > 1:
        raise DuplicateSectionError(
            "expanded macro contains more than one %HTML_INPUT section",
            source=macro.source)
    reports = [s for s in macro.sections
               if isinstance(s, HtmlReportSection)]
    if len(reports) > 1:
        raise DuplicateSectionError(
            "expanded macro contains more than one %HTML_REPORT section",
            source=macro.source)
    names: set[str] = set()
    for section in macro.sections:
        if isinstance(section, SqlSection) and section.name is not None:
            if section.name in names:
                raise DuplicateSectionError(
                    f"expanded macro duplicates SQL section "
                    f"{section.name!r}", source=macro.source)
            names.add(section.name)
