"""The unified variable namespace of Section 4.3.

DB2 WWW Connection merges three kinds of variables into one namespace:

1. variables assigned in ``%DEFINE`` sections (Section 3.1),
2. HTML input variables arriving from the Web client through the CGI
   interface (Section 2.2) — these take **priority** over macro defaults
   ("giving the HTML input variable values from the Web client higher
   priority than the variable values defined in the macro itself"),
3. system-defined variables instantiated at run time from SQL query
   results (Section 3.2.1: ``N1``, ``V1``, ``ROW_NUM``, ...).

:class:`VariableStore` implements that namespace.  Values are stored
*unevaluated* (as :class:`~repro.core.values.ValueString` trees or
conditional/list specifications) because the paper's substitution is lazy:
"the right hand side value strings of variable definitions are not
evaluated until the latest possible moment" (Section 4.3.1).  Evaluation
lives in :mod:`repro.core.substitution`.

Priority is enforced at *assignment* time: names set from the client are
"protected" and macro ``%DEFINE`` assignments to them are silently skipped
(this is exactly how ``%DEFINE`` supplies defaults for HTML input
variables).  System variables live in a separate top-priority layer that
the report generator pushes and pops around each row.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Optional, Union

from repro.core import ast
from repro.core.values import ValueString

#: Default separator for list variables built from repeated CGI inputs
#: (Section 2.2: "multiple values for DBFIELD will be returned ...";
#: Section 3.1.3: "By default, a multiply assigned variable returned from
#: an HTML form in the QUERY_STRING is a list variable with the comma (,)
#: as the list separator").
DEFAULT_LIST_SEPARATOR = ValueString.literal(",")


@dataclass
class SimpleEntry:
    """An unevaluated simple assignment."""

    value: ValueString


@dataclass
class ConditionalEntry:
    """An unevaluated conditional assignment (all four forms)."""

    then_value: ValueString
    test_name: Optional[str] = None
    else_value: Optional[ValueString] = None


ListElement = Union[SimpleEntry, ConditionalEntry]


@dataclass
class ListEntry:
    """A list variable: separator plus accumulated (unevaluated) elements."""

    separator: ValueString = DEFAULT_LIST_SEPARATOR
    elements: list[ListElement] = field(default_factory=list)


@dataclass
class ExecEntry:
    """An executable variable declaration (Section 3.1.4).

    ``last_error`` holds the error code of the most recent execution
    ("The error code, if any, resulting from the execution is returned in
    varname. If there is no error, varname will be set to NULL"); the empty
    string is the paper's NULL.
    """

    command: ValueString
    last_error: str = ""


Entry = Union[SimpleEntry, ConditionalEntry, ListEntry, ExecEntry]


class VariableStore:
    """The run-time variable namespace of a macro invocation."""

    def __init__(self) -> None:
        self._entries: dict[str, Entry] = {}
        self._protected: set[str] = set()
        self._system: dict[str, str] = {}
        self._system_ci: dict[str, str] = {}

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------

    def lookup(self, name: str) -> Optional[Union[Entry, str]]:
        """Resolve ``name`` to its entry, or to a plain string for system
        variables.  Returns ``None`` when the name is undefined.

        System variables win over everything; the implicit column-name
        variables among them are case-insensitive (Section 3: "variable
        names are case sensitive except in certain special cases like
        implicit variables that represent database column names").
        """
        if name in self._system:
            return self._system[name]
        folded = name.lower()
        if folded in self._system_ci:
            return self._system_ci[folded]
        return self._entries.get(name)

    def __contains__(self, name: str) -> bool:
        return self.lookup(name) is not None

    def names(self) -> Iterator[str]:
        """All currently defined names (system layer first)."""
        yield from self._system
        yield from self._entries

    def is_protected(self, name: str) -> bool:
        return name in self._protected

    def has_system(self, name: str) -> bool:
        """True when ``name`` is an *exact* system-layer variable.

        The compiled report path uses this to detect stale exact-spelling
        system variables (left by an earlier SQL section) that would
        shadow a case-insensitive implicit lookup.
        """
        return name in self._system

    # ------------------------------------------------------------------
    # Macro %DEFINE processing
    # ------------------------------------------------------------------

    def apply(self, statement: ast.DefineStatement) -> None:
        """Apply one define-statement in macro order."""
        if isinstance(statement, ast.SimpleAssignment):
            self.assign_simple(statement.name, statement.value)
        elif isinstance(statement, ast.ConditionalAssignment):
            self.assign_conditional(
                statement.name, statement.then_value,
                test_name=statement.test_name,
                else_value=statement.else_value)
        elif isinstance(statement, ast.ListDeclaration):
            self.declare_list(statement.name, statement.separator)
        elif isinstance(statement, ast.ExecDeclaration):
            self.declare_exec(statement.name, statement.command)
        else:  # pragma: no cover - exhaustive over the union
            raise TypeError(f"unknown define statement {statement!r}")

    def apply_section(self, section: ast.DefineSection) -> None:
        for statement in section.statements:
            self.apply(statement)

    def assign_simple(self, name: str, value: ValueString) -> None:
        """``name = "value"``: replace, or append when ``name`` is a list.

        Skipped when the client already supplied ``name`` (CGI priority).
        """
        if name in self._protected:
            return
        existing = self._entries.get(name)
        if isinstance(existing, ListEntry):
            existing.elements.append(SimpleEntry(value))
        else:
            self._entries[name] = SimpleEntry(value)

    def assign_conditional(self, name: str, then_value: ValueString, *,
                           test_name: Optional[str] = None,
                           else_value: Optional[ValueString] = None) -> None:
        """Conditional assignment; appends when ``name`` is a list variable.

        The Section 3.1.3 example relies on appending: two conditional
        assignments to ``where_list`` accumulate as two list elements.
        """
        if name in self._protected:
            return
        entry = ConditionalEntry(then_value, test_name=test_name,
                                 else_value=else_value)
        existing = self._entries.get(name)
        if isinstance(existing, ListEntry):
            existing.elements.append(entry)
        else:
            self._entries[name] = entry

    def declare_list(self, name: str, separator: ValueString) -> None:
        """``%LIST "sep" name``: declare/convert a list variable.

        A prior scalar value becomes the first element.  For a name the
        client supplied, only the separator is replaced — Section 3.1.3:
        the default comma "can be overridden using the list variable
        declaration" — because the client's *values* keep priority.
        """
        existing = self._entries.get(name)
        if isinstance(existing, ListEntry):
            existing.separator = separator
            return
        elements: list[ListElement] = []
        if isinstance(existing, (SimpleEntry, ConditionalEntry)):
            elements.append(existing)
        self._entries[name] = ListEntry(separator=separator,
                                        elements=elements)

    def declare_exec(self, name: str, command: ValueString) -> None:
        if name in self._protected:
            return
        self._entries[name] = ExecEntry(command)

    # ------------------------------------------------------------------
    # Client (CGI) input variables — Section 4.3.2
    # ------------------------------------------------------------------

    def set_client_inputs(self, pairs: list[tuple[str, str]]) -> None:
        """Install HTML input variables received from the Web client.

        Each pair is processed "as a simple assignment statement", so the
        value text is parsed for ``$(var)`` references (this is what makes
        Appendix A's hidden-variable idiom work).  A name appearing more
        than once becomes a list variable with the default comma separator.
        The names are then protected against macro ``%DEFINE`` overrides.
        """
        for name, raw_value in pairs:
            value = ValueString.parse(raw_value)
            existing = self._entries.get(name)
            if name in self._protected and existing is not None:
                if isinstance(existing, ListEntry):
                    existing.elements.append(SimpleEntry(value))
                else:
                    self._entries[name] = ListEntry(
                        separator=DEFAULT_LIST_SEPARATOR,
                        elements=[existing, SimpleEntry(value)])
            else:
                self._entries[name] = SimpleEntry(value)
                self._protected.add(name)

    # ------------------------------------------------------------------
    # System variables — Section 3.2.1
    # ------------------------------------------------------------------

    def set_system(self, name: str, value: str, *,
                   case_insensitive: bool = False) -> None:
        """Install a system variable (evaluated, literal value).

        System values never re-enter substitution: a database column value
        that happens to contain the text ``$(x)`` prints as-is rather than
        being dereferenced (deliberate hardening; see DESIGN.md).
        """
        self._system[name] = value
        if case_insensitive:
            self._system_ci[name.lower()] = value

    def clear_system(self, names: list[str]) -> None:
        for name in names:
            self._system.pop(name, None)
            self._system_ci.pop(name.lower(), None)

    def system_snapshot(self) -> tuple[dict[str, str], dict[str, str]]:
        """Capture the system layer so a caller can restore it afterwards."""
        return dict(self._system), dict(self._system_ci)

    def restore_system(
            self, snapshot: tuple[dict[str, str], dict[str, str]]) -> None:
        self._system, self._system_ci = snapshot

    # ------------------------------------------------------------------
    # Introspection helpers used by tests and the engine
    # ------------------------------------------------------------------

    def entry_kind(self, name: str) -> Optional[str]:
        entry = self.lookup(name)
        if entry is None:
            return None
        if isinstance(entry, str):
            return "system"
        return type(entry).__name__
