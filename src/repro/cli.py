"""Command-line interface: ``python -m repro <command>``.

The operational tools a 1996 webmaster (and today's tests) need:

``lint``
    Static-check macro files before deployment.
``run``
    Execute a macro in input or report mode against SQLite databases,
    printing the generated HTML.
``render``
    Like ``run`` but displays the page as a text-mode browser would.
``unparse``
    Parse and regenerate a macro (format/normalise; also a syntax check).
``stats``
    Summarise a Common Log Format access log (the webmaster's numbers).
``trace``
    Pretty-print a JSONL request-trace / slow-query log as span trees.
``top``
    Fetch a running server's ``/statements`` endpoint and render the
    per-digest statement table (who is burning the time).
``serve``
    Start the HTTP server with DB2WWW mounted over a macro directory.
    Tracing and the ``/metrics`` + ``/statusz`` endpoints are on by
    default (``--no-trace`` turns span collection off); ``--trace-log``
    and ``--slow-query-ms`` add the structured log files.

Variables are passed as ``name=value`` arguments; databases as
``--database NAME=path.sqlite`` (repeatable).
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Optional, Sequence

from repro.core.engine import EngineConfig, MacroEngine
from repro.core.lint import lint_macro
from repro.core.macrofile import MacroLibrary
from repro.core.parser import parse_macro
from repro.errors import ReproError
from repro.html.render import render_markup
from repro.sql.gateway import DatabaseRegistry
from repro.sql.transactions import TransactionMode


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="DB2 WWW Connection macro tools (SIGMOD'96 repro)")
    sub = parser.add_subparsers(dest="command", required=True)

    lint = sub.add_parser("lint", help="static-check macro files")
    lint.add_argument("files", nargs="+", type=Path)

    for name, help_text in (("run", "execute a macro, print HTML"),
                            ("render", "execute a macro, show as text")):
        cmd = sub.add_parser(name, help=help_text)
        cmd.add_argument("file", type=Path)
        cmd.add_argument("mode", choices=["input", "report"])
        cmd.add_argument("inputs", nargs="*", metavar="name=value",
                         help="HTML input variables")
        cmd.add_argument("--database", action="append", default=[],
                         metavar="NAME=PATH",
                         help="register a SQLite database under NAME")
        cmd.add_argument("--transaction-mode", default="auto_commit",
                         choices=["auto_commit", "single"])
        _add_resilience_options(cmd)
        _add_shard_options(cmd)

    unparse = sub.add_parser("unparse",
                             help="parse and regenerate macro source")
    unparse.add_argument("file", type=Path)

    stats = sub.add_parser(
        "stats", help="summarise a Common Log Format access log")
    stats.add_argument("logfile", type=Path)
    stats.add_argument("--top", type=int, default=10,
                       help="how many paths/hosts to list")

    trace = sub.add_parser(
        "trace", help="pretty-print a JSONL trace / slow-query log")
    trace.add_argument("logfile", type=Path)
    trace.add_argument("--slow-only", action="store_true",
                       dest="slow_only",
                       help="show only slow_query records")
    trace.add_argument("--limit", type=int, default=0,
                       help="show at most N records (0 = all)")
    trace.add_argument("--trace-id", default=None, dest="trace_id",
                       metavar="ID",
                       help="show only records of trace ID (the "
                            "X-Trace-Id a client was handed)")

    top = sub.add_parser(
        "top", help="show a running server's statement-digest table")
    top.add_argument("url", help="server base URL (or its /statements "
                                 "endpoint), e.g. http://127.0.0.1:8000")
    top.add_argument("--limit", type=int, default=20,
                     help="rows to show, hottest first (0 = all)")
    top.add_argument("--sql", action="store_true",
                     help="print each digest's normalized statement "
                          "text under its row")

    serve = sub.add_parser("serve", help="serve a macro directory")
    serve.add_argument("--macros", type=Path, required=True,
                       help="directory of .d2w macro files")
    serve.add_argument("--database", action="append", default=[],
                       metavar="NAME=PATH")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8000)
    serve.add_argument("--gateway", default="inprocess",
                       choices=["inprocess", "subprocess", "appserver"],
                       help="execution model behind /cgi-bin/db2www: "
                            "in-process engine, process-per-request "
                            "CGI, or the persistent app-server pool "
                            "(see docs/deployment.md, Gateway modes)")
    serve.add_argument("--workers", type=int, default=4, metavar="N",
                       help="app-server worker processes "
                            "(--gateway appserver only)")
    serve.add_argument("--recycle-after", type=int, default=500,
                       metavar="N", dest="recycle_after",
                       help="recycle each app-server worker after N "
                            "requests")
    serve.add_argument("--stream", action="store_true",
                       help="stream report pages off the live SQL "
                            "cursor (close-delimited on HTTP/1.0; the "
                            "async edge sends chunked to HTTP/1.1 "
                            "clients; --gateway inprocess only)")
    serve.add_argument("--edge", default="threaded",
                       choices=["threaded", "async"],
                       help="HTTP front end: thread-per-connection or "
                            "the asyncio event-loop edge (keep-alive "
                            "pipelining, chunked streaming, bounded "
                            "connection budget)")
    serve.add_argument("--acceptors", type=int, default=1, metavar="N",
                       help="async-edge acceptor processes sharing the "
                            "port via SO_REUSEPORT (N>1 spawns N serve "
                            "processes; --edge async only)")
    serve.add_argument("--reuse-port", action="store_true",
                       dest="reuse_port",
                       help="set SO_REUSEPORT on the listener so other "
                            "acceptor processes can share the port")
    serve.add_argument("--max-connections", type=int, default=None,
                       metavar="N", dest="max_connections",
                       help="concurrent-connection budget; connections "
                            "past it get an immediate 503 (default: "
                            "1024 on the async edge, unbounded on the "
                            "threaded edge)")
    serve.add_argument("--overload", action="store_true",
                       dest="overload",
                       help="enable adaptive admission control: a "
                            "bounded admission queue with per-class "
                            "weighted fair queueing and an AIMD "
                            "shedder driven by the live interactive "
                            "p99 (503 + honest Retry-After when shed)")
    serve.add_argument("--overload-concurrency", type=int, default=8,
                       metavar="N", dest="overload_concurrency",
                       help="requests processed concurrently past "
                            "admission (default 8)")
    serve.add_argument("--overload-queue", type=int, default=64,
                       metavar="N", dest="overload_queue",
                       help="admission queue depth; a full queue "
                            "evicts the cheapest-to-shed waiter "
                            "(default 64)")
    serve.add_argument("--slo-ms", type=float, default=100.0,
                       metavar="MS", dest="slo_ms",
                       help="interactive p99 target driving the "
                            "shedder (default 100)")
    serve.add_argument("--overload-rule", action="append", default=[],
                       metavar="SUBSTR=CLASS", dest="overload_rules",
                       help="classify request paths containing SUBSTR "
                            "as CLASS (cached/interactive/heavy/"
                            "unclassified); repeatable, first match "
                            "wins, checked before the learned profile")
    serve.add_argument("--listen", default=None, metavar="HOST:PORT",
                       help="worker-pool daemon mode: no HTTP edge; "
                            "host the app-server worker pool behind a "
                            "TCP endpoint for --connect dispatchers "
                            "on other machines")
    serve.add_argument("--connect", action="append", default=[],
                       metavar="HOST:PORT",
                       help="dispatch /cgi-bin/db2www to remote "
                            "worker-pool daemons instead of a local "
                            "pool (repeatable to balance across "
                            "pools; --gateway appserver only)")
    serve.add_argument("--backlog", type=int, default=128,
                       help="listen(2) backlog of the HTTP server")
    serve.add_argument("--query-cache", type=int, default=128,
                       metavar="ENTRIES", dest="query_cache",
                       help="max cached SELECT results (0 disables)")
    serve.add_argument("--macro-stat-ttl", type=float, default=1.0,
                       metavar="SECONDS", dest="macro_stat_ttl",
                       help="seconds between macro-file mtime checks "
                            "(0 checks every request)")
    serve.add_argument("--tenant-config", type=Path, default=None,
                       metavar="FILE", dest="tenant_config",
                       help="host multi-tenant applications under /t/ "
                            "per the JSON tenant descriptor FILE (see "
                            "docs/deployment.md §11: per-tenant macro "
                            "dirs, databases, owner credentials, "
                            "visibility, read-only, quotas)")
    serve.add_argument("--access-log", type=Path, default=None,
                       metavar="PATH", dest="access_log",
                       help="append Common Log Format entries (with "
                            "retry/breaker counters in stats) to PATH")
    serve.add_argument("--no-trace", action="store_true", dest="no_trace",
                       help="disable request tracing (metrics endpoints "
                            "stay up; span collection is skipped)")
    serve.add_argument("--trace-log", type=Path, default=None,
                       metavar="PATH", dest="trace_log",
                       help="append one JSON line per request trace to "
                            "PATH (render with `repro trace PATH`)")
    serve.add_argument("--slow-query-ms", type=float, default=None,
                       metavar="MS", dest="slow_query_ms",
                       help="log any SQL execution at or over MS "
                            "milliseconds with its span subtree")
    serve.add_argument("--slow-query-log", type=Path, default=None,
                       metavar="PATH", dest="slow_query_log",
                       help="slow-query log path (default "
                            "slow_query.log next to the access log, "
                            "or ./slow_query.log)")
    serve.add_argument("--trace-sample", default=None, metavar="SPEC",
                       dest="trace_sample",
                       help="tail-sample the trace/slow-query files: "
                            "keep errors and over-SLO traces always, "
                            "a per-digest reservoir for the rest "
                            "(SPEC like 'slo_ms=250,per_key=5,"
                            "window_s=60,head=0.01', or 'on' for "
                            "defaults; metrics and /statements still "
                            "see every trace)")
    _add_resilience_options(serve)
    _add_shard_options(serve)
    return parser


def _add_resilience_options(cmd: argparse.ArgumentParser) -> None:
    """Failure-handling knobs shared by run/render/serve.

    See docs/deployment.md, "Resilience and failure handling".
    """
    cmd.add_argument("--inject-faults", default=None, metavar="SPEC",
                     dest="inject_faults",
                     help="inject database faults per SPEC, e.g. "
                          "prob:0.05 or connect:0.1,slow:0.2:0.05 "
                          "(see repro.resilience.faults)")
    cmd.add_argument("--max-retries", type=int, default=0,
                     metavar="N", dest="max_retries",
                     help="retry transient read failures up to N times "
                          "with exponential backoff (0 disables)")
    cmd.add_argument("--request-deadline", type=float, default=None,
                     metavar="SECONDS", dest="request_deadline",
                     help="per-request time budget; exceeding it maps "
                          "to 504 Gateway Timeout")
    cmd.add_argument("--breaker-threshold", type=int, default=0,
                     metavar="N", dest="breaker_threshold",
                     help="open a per-database circuit breaker after N "
                          "consecutive connect failures (0 disables); "
                          "open circuits answer 503 + Retry-After")
    cmd.add_argument("--degrade", action="store_true", dest="degrade",
                     help="on terminal SQL failure, emit the error "
                          "block and continue the report instead of "
                          "aborting the page")


def _add_shard_options(cmd: argparse.ArgumentParser) -> None:
    """Sharded-tier options shared by run, render, and serve.

    A logical sharded database is declared with ``--shards`` naming its
    physical shard paths in routing order; each shard's primary is
    registered as ``LOGICAL#i`` and its replicas (``--shard-replicas``)
    as ``LOGICAL#i.rN``.  See docs/deployment.md §10.
    """
    cmd.add_argument("--shards", action="append", default=[],
                     metavar="NAME=PATH,PATH,...",
                     help="register NAME as a sharded logical database "
                          "over the comma-separated SQLite paths "
                          "(hash-routed on the macro's SHARD_KEY)")
    cmd.add_argument("--shard-replicas", action="append", default=[],
                     dest="shard_replicas", metavar="NAME.IDX=PATH,...",
                     help="read replicas for shard IDX of logical "
                          "database NAME (cacheable SELECTs prefer "
                          "them; everything else hits the primary)")
    cmd.add_argument("--shard-key", default="SHARD_KEY",
                     dest="shard_key", metavar="VAR",
                     help="macro variable that pins a request to one "
                          "shard (default SHARD_KEY)")
    cmd.add_argument("--replica-lag-bound", type=float, default=1.0,
                     dest="replica_lag_bound", metavar="SEC",
                     help="skip replicas whose observed replication "
                          "lag exceeds SEC seconds (default 1.0)")
    cmd.add_argument("--shard-timeout", type=float, default=None,
                     dest="shard_timeout", metavar="SEC",
                     help="per-shard slice of the request deadline for "
                          "scatter-gather workers")


def _apply_sharding(args, registry: DatabaseRegistry) -> bool:
    """Register any ``--shards`` topologies; True when sharding is on."""
    specs = getattr(args, "shards", [])
    if not specs:
        return False
    from repro.sql.sharding import build_shard_map
    replica_specs: dict[str, dict[int, list[str]]] = {}
    for item in getattr(args, "shard_replicas", []):
        target, sep, paths = item.partition("=")
        name, dot, index_text = target.rpartition(".")
        if not sep or not dot or not index_text.isdigit():
            raise SystemExit(f"bad --shard-replicas {item!r}: expected "
                             "NAME.IDX=PATH[,PATH...]")
        replica_specs.setdefault(name, {})[int(index_text)] = \
            [p for p in paths.split(",") if p]
    for name, paths_text in _parse_bindings(specs, "--shards"):
        paths = [p for p in paths_text.split(",") if p]
        if not paths:
            raise SystemExit(f"bad --shards {name!r}: no shard paths")
        shard_map = build_shard_map(
            registry, name, paths,
            replica_paths=replica_specs.pop(name, None),
            key_variable=getattr(args, "shard_key", "SHARD_KEY"),
            lag_bound=getattr(args, "replica_lag_bound", 1.0))
        shard_map.shard_timeout = getattr(args, "shard_timeout", None)
    if replica_specs:
        unknown = ", ".join(sorted(replica_specs))
        raise SystemExit(f"--shard-replicas names unknown logical "
                         f"database(s): {unknown}")
    # Per-endpoint pools are created lazily on first use, so shards
    # that serve no requests hold no connections (and leak none).
    registry.enable_pools()
    return True


def main(argv: Optional[Sequence[str]] = None,
         out=None) -> int:
    """CLI entry point; returns the process exit status."""
    out = out or sys.stdout
    args = build_parser().parse_args(argv)
    try:
        if args.command == "lint":
            return _cmd_lint(args, out)
        if args.command in ("run", "render"):
            return _cmd_run(args, out, as_text=args.command == "render")
        if args.command == "unparse":
            return _cmd_unparse(args, out)
        if args.command == "stats":
            return _cmd_stats(args, out)
        if args.command == "trace":
            return _cmd_trace(args, out)
        if args.command == "top":
            return _cmd_top(args, out)
        if args.command == "serve":
            return _cmd_serve(args, out)
    except ReproError as exc:
        print(f"error: {type(exc).__name__}: {exc}", file=sys.stderr)
        return 2
    except BrokenPipeError:
        return 0  # output piped into head/less that exited; fine
    raise AssertionError(f"unhandled command {args.command!r}")


# ---------------------------------------------------------------------------
# commands
# ---------------------------------------------------------------------------


def _cmd_lint(args, out) -> int:
    worst = "info"
    order = {"info": 0, "warning": 1, "error": 2}
    for path in args.files:
        macro = parse_macro(path.read_text(encoding="utf-8"),
                            source=str(path))
        findings = lint_macro(macro)
        if not findings:
            print(f"{path}: clean", file=out)
            continue
        for finding in findings:
            print(finding.render(str(path)), file=out)
            if order[finding.severity] > order[worst]:
                worst = finding.severity
    return 1 if worst == "error" else 0


def _parse_bindings(pairs: list[str],
                    what: str) -> list[tuple[str, str]]:
    bindings = []
    for item in pairs:
        name, sep, value = item.partition("=")
        if not sep or not name:
            raise SystemExit(f"bad {what} {item!r}: expected name=value")
        bindings.append((name, value))
    return bindings


def _apply_resilience(args, registry: DatabaseRegistry,
                      config: EngineConfig) -> None:
    """Wire the shared resilience options into a registry and config."""
    if getattr(args, "inject_faults", None):
        registry.inject_faults(args.inject_faults)
    if getattr(args, "breaker_threshold", 0) > 0:
        registry.enable_breakers(failure_threshold=args.breaker_threshold)
    if getattr(args, "max_retries", 0) > 0:
        from repro.resilience.retry import RetryPolicy
        config.retry_policy = RetryPolicy(
            max_attempts=args.max_retries + 1)
    if getattr(args, "request_deadline", None):
        config.request_deadline = args.request_deadline
    if getattr(args, "degrade", False):
        config.degrade_sql_errors = True


def _build_engine(args) -> MacroEngine:
    registry = DatabaseRegistry()
    for name, path in _parse_bindings(args.database, "--database"):
        registry.register_path(name, path)
    _apply_sharding(args, registry)
    config = EngineConfig(
        transaction_mode=TransactionMode.parse(args.transaction_mode))
    _apply_resilience(args, registry, config)
    return MacroEngine(registry, config=config)


def _cmd_run(args, out, *, as_text: bool) -> int:
    library = MacroLibrary(args.file.parent)
    macro = library.load(args.file.name)
    engine = _build_engine(args)
    inputs = _parse_bindings(args.inputs, "input variable")
    result = engine.execute(macro, args.mode, inputs)
    if as_text:
        print(render_markup(result.html), file=out)
    else:
        print(result.html, file=out)
    return 0 if result.ok else 1


def _cmd_unparse(args, out) -> int:
    macro = parse_macro(args.file.read_text(encoding="utf-8"),
                        source=str(args.file))
    print(macro.unparse(), file=out)
    return 0


def _cmd_stats(args, out) -> int:
    import json
    from collections import Counter

    from repro.http.accesslog import parse_line

    entries = []
    skipped = 0
    counters: dict[str, int] = {}
    for line in args.logfile.read_text(encoding="utf-8").splitlines():
        if not line.strip():
            continue
        if line.startswith("#stats "):
            # Server-side counter trailer (AccessLog.append_stats_note);
            # later notes supersede earlier ones key by key.
            try:
                note = json.loads(line[len("#stats "):])
            except ValueError:
                skipped += 1
                continue
            if isinstance(note, dict):
                counters.update({str(k): v for k, v in note.items()})
            continue
        entry = parse_line(line)
        if entry is None:
            skipped += 1
        else:
            entries.append(entry)
    if not entries:
        print("no parseable CLF lines found", file=out)
        return 1
    errors = sum(1 for e in entries if e.status >= 400)
    total_bytes = sum(max(e.size, 0) for e in entries)
    print(f"requests: {len(entries)}   errors: {errors}   "
          f"bytes: {total_bytes}   unparseable lines: {skipped}",
          file=out)
    print(f"\ntop {args.top} paths:", file=out)
    for path_name, hits in Counter(
            e.path for e in entries).most_common(args.top):
        print(f"  {hits:>6}  {path_name}", file=out)
    print(f"\ntop {args.top} hosts:", file=out)
    for host, hits in Counter(
            e.host for e in entries).most_common(args.top):
        print(f"  {hits:>6}  {host}", file=out)
    print("\nstatus codes:", file=out)
    for status, hits in sorted(Counter(
            e.status for e in entries).items()):
        print(f"  {status}: {hits}", file=out)
    from repro.workloads.metrics import LatencyReport
    families = LatencyReport.families(counters)
    if families:
        # Histogram families in the #stats trailer (the metrics
        # registry flattens each one to _count/_mean/_p50/_p95/_p99).
        print("\nserver latency:", file=out)
        print("  " + LatencyReport.header(), file=out)
        for family in families:
            report = LatencyReport.from_flat(counters, family)
            print("  " + report.row(family), file=out)
    flattened_suffixes = ("_count", "_mean", "_p50", "_p95", "_p99")
    scalar = {key: value for key, value in counters.items()
              if not any(key.endswith(suffix)
                         and key[:-len(suffix)] in families
                         for suffix in flattened_suffixes)}
    shard_keys = {key: scalar.pop(key) for key in list(scalar)
                  if key.startswith("shard_")}
    if scalar:
        print("\nserver counters:", file=out)
        for key in sorted(scalar):
            print(f"  {key}: {scalar[key]}", file=out)
    if shard_keys:
        _print_shard_section(shard_keys, out)
    return 0


def _print_shard_section(counters: dict, out) -> None:
    """The per-shard routing table of `repro stats`.

    The ``shard`` stats source flattens ShardMap counters to
    ``shard_<idx>_<counter>`` (per shard) and ``shard_<counter>``
    (topology-wide); render the former as one row per shard and the
    latter as plain lines.
    """
    import re as _re

    per_shard: dict[str, dict[str, object]] = {}
    plain: dict[str, object] = {}
    for key, value in counters.items():
        match = _re.match(r"shard_(\d+)_(\w+)$", key)
        if match:
            per_shard.setdefault(match.group(1), {})[match.group(2)] = value
        else:
            plain[key[len("shard_"):]] = value
    print("\nshard routing:", file=out)
    for key in sorted(plain):
        print(f"  {key}: {plain[key]}", file=out)
    if not per_shard:
        return
    columns = sorted({name for row in per_shard.values() for name in row})
    header = "  shard  " + "  ".join(f"{c:>17}" for c in columns)
    print(header, file=out)
    for index in sorted(per_shard, key=int):
        row = per_shard[index]
        cells = "  ".join(f"{row.get(c, 0):>17}" for c in columns)
        print(f"  {index:>5}  {cells}", file=out)


def _cmd_trace(args, out) -> int:
    from repro.obs.sinks import format_trace, read_trace_log

    records = read_trace_log(args.logfile)
    if args.slow_only:
        records = [r for r in records if r.get("type") == "slow_query"]
    if args.trace_id:
        records = [r for r in records
                   if r.get("trace_id") == args.trace_id]
    if args.limit > 0:
        records = records[-args.limit:]
    if not records:
        print("no trace records found", file=out)
        return 1
    for record in records:
        print(format_trace(record), file=out)
        print("", file=out)
    print(f"{len(records)} record(s)", file=out)
    return 0


def _cmd_top(args, out) -> int:
    import json
    from urllib.request import urlopen

    url = args.url
    if not url.startswith(("http://", "https://")):
        url = "http://" + url
    if "/statements" not in url:
        url = url.rstrip("/") + "/statements"
    if args.limit > 0:
        url += ("&" if "?" in url else "?") + f"limit={args.limit}"
    with urlopen(url, timeout=10) as response:
        snapshot = json.loads(response.read().decode("utf-8"))
    rows = snapshot.get("statements", [])
    if not rows:
        print("no statements recorded yet", file=out)
        return 1
    header = (f"{'digest':<12}  {'calls':>8}  {'errors':>6}  "
              f"{'rows':>10}  {'hit%':>5}  {'fan':>4}  "
              f"{'mean ms':>9}  {'p95 ms':>9}  {'total ms':>11}")
    print(header, file=out)
    for row in rows:
        hit = row.get("cache_hit_ratio", 0.0) * 100.0
        print(f"{row.get('digest', '?'):<12}  "
              f"{row.get('calls', 0):>8}  "
              f"{row.get('errors', 0):>6}  "
              f"{row.get('rows', 0):>10}  "
              f"{hit:>5.1f}  "
              f"{row.get('fanout_max', 0):>4}  "
              f"{row.get('mean_ms', 0.0):>9.2f}  "
              f"{row.get('p95_ms', 0.0):>9.2f}  "
              f"{row.get('total_ms', 0.0):>11.1f}", file=out)
        if args.sql and row.get("statement"):
            print(f"              {row['statement']}", file=out)
    print(f"\n{snapshot.get('distinct_digests', len(rows))} digest(s), "
          f"{snapshot.get('recorded_total', 0)} execution(s) recorded, "
          f"{snapshot.get('overflowed_total', 0)} beyond the budget",
          file=out)
    return 0


def _slow_query_path(args) -> Path:
    """Where ``--slow-query-ms`` dumps go when no path was given."""
    if getattr(args, "slow_query_log", None) is not None:
        return args.slow_query_log
    access_log = getattr(args, "access_log", None)
    base = access_log.parent if access_log is not None else Path(".")
    return base / "slow_query.log"


def _worker_env(args) -> dict[str, str]:
    """Application configuration for out-of-process gateways."""
    env = {"REPRO_MACRO_DIR": str(args.macros.resolve())}
    for name, path in _parse_bindings(args.database, "--database"):
        env[f"REPRO_DATABASE_{name.upper()}"] = str(Path(path).resolve())
    if args.query_cache > 0:
        env["REPRO_QUERY_CACHE"] = str(args.query_cache)
    # One request at a time per worker: a small pool just keeps the
    # connection warm between requests.
    env["REPRO_POOL_SIZE"] = "1"
    if not getattr(args, "no_trace", False):
        # Workers join the server's traces: the tracer must be on so
        # their spans exist to ship home in the response frames.
        env["REPRO_TRACE"] = "1"
    if getattr(args, "gateway", "") == "subprocess":
        # Subprocess CGI runs deliver their own root spans, so the
        # file sinks must live *in* the subprocess.  (App-server
        # worker spans are grafted into the dispatcher's trace and
        # logged by the serving process — no worker-side sinks, or
        # every slow query would be recorded twice.)
        if getattr(args, "trace_log", None) is not None:
            env["REPRO_TRACE_LOG"] = str(args.trace_log.resolve())
        if getattr(args, "slow_query_ms", None) is not None:
            env["REPRO_SLOW_QUERY_MS"] = str(args.slow_query_ms)
            env["REPRO_SLOW_QUERY_LOG"] = str(
                _slow_query_path(args).resolve())
        if getattr(args, "trace_sample", None):
            # Subprocess runs own their file sinks, so they tail-sample
            # them the same way the serving process does.
            env["REPRO_TRACE_SAMPLE"] = args.trace_sample
    return env


def _cmd_pool_daemon(args, out) -> int:  # pragma: no cover - interactive
    """``repro serve --listen host:port`` — the standalone worker-pool
    daemon: no HTTP edge, just the app-server pool behind TCP for
    ``--connect`` dispatchers on other machines."""
    from repro.appserver import WorkerPoolDaemon
    from repro.appserver.protocol import parse_endpoint

    kind, address = parse_endpoint(args.listen)
    if kind != "tcp":
        raise SystemExit(f"--listen expects host:port, got {args.listen!r}")
    host, port = address
    # No TRACER.enable() here: the daemon only forwards the trace tree
    # riding the RESPONSE frame; workers trace via REPRO_TRACE.
    daemon = WorkerPoolDaemon(_worker_env(args), workers=args.workers,
                              host=host, port=port,
                              recycle_after=args.recycle_after)
    print(f"worker pool listening on {daemon.endpoint} "
          f"({args.workers} workers)", file=out, flush=True)
    print("press Ctrl-C to stop", file=out, flush=True)
    try:
        import signal
        signal.pause()
    except KeyboardInterrupt:
        pass
    finally:
        daemon.shutdown()
    return 0


def _cmd_multi_acceptor(args, out) -> int:  # pragma: no cover - interactive
    """``repro serve --edge async --acceptors N`` — N serve processes
    sharing one port via ``SO_REUSEPORT``; the kernel load-balances
    accepted connections across their event loops."""
    import signal
    import socket
    import subprocess

    port = args.port
    if port == 0:
        # Pre-pick the shared port so every child binds the same one.
        probe = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        probe.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        probe.bind((args.host, 0))
        port = probe.getsockname()[1]
        probe.close()
    child_argv = _acceptor_child_argv(sys.argv[1:], port)
    children = [subprocess.Popen([sys.executable, "-m", "repro"]
                                 + child_argv)
                for _ in range(args.acceptors)]
    print(f"serving {args.acceptors} acceptors on "
          f"http://{args.host}:{port} (SO_REUSEPORT)",
          file=out, flush=True)
    try:
        signal.pause()
    except KeyboardInterrupt:
        pass
    finally:
        for child in children:
            child.terminate()
        for child in children:
            try:
                child.wait(timeout=10)
            except subprocess.TimeoutExpired:
                child.kill()
    return 0


def _acceptor_child_argv(argv: list[str], port: int) -> list[str]:
    """The original serve argv with acceptors/port pinned for a child."""
    out: list[str] = []
    skip = False
    for item in argv:
        if skip:
            skip = False
            continue
        if item in ("--acceptors", "--port"):
            skip = True
            continue
        if item.startswith(("--acceptors=", "--port=")):
            continue
        out.append(item)
    return out + ["--port", str(port), "--acceptors", "1",
                  "--reuse-port"]


def _load_tenant_config(path: Path, *, query_cache=None):
    """Build a TenantRegistry from a JSON descriptor file.

    The file is either ``{"tenants": [...]}`` or a bare list; each
    entry::

        {"name": "alpha", "owner": "alice", "password": "secret",
         "visibility": "private", "read_only": false,
         "macros": "tenants/alpha/macros",
         "databases": {"SHOP": "tenants/alpha/shop.sqlite"},
         "quota": {"requests": 100, "rows": 50000,
                   "window_seconds": 60}}

    ``password`` registers the owner with the shared authenticator
    (omit for owners declared by an earlier tenant); a database path of
    ``:memory:`` provisions a fresh shared in-memory database.
    """
    import json as _json

    from repro.tenancy import TenantQuota, TenantRegistry

    spec = _json.loads(path.read_text(encoding="utf-8"))
    entries = spec.get("tenants", []) if isinstance(spec, dict) else spec
    registry = TenantRegistry(query_cache=query_cache)
    for entry in entries:
        quota = None
        quota_spec = entry.get("quota")
        if quota_spec:
            quota = TenantQuota(
                requests=quota_spec.get("requests"),
                rows=quota_spec.get("rows"),
                window_seconds=float(
                    quota_spec.get("window_seconds", 60.0)))
        tenant = registry.create_tenant(
            entry["name"], owner=entry["owner"],
            password=entry.get("password"),
            visibility=entry.get("visibility", "public"),
            read_only=bool(entry.get("read_only", False)),
            macro_root=entry.get("macros"),
            quota=quota)
        for db_name, db_path in (entry.get("databases") or {}).items():
            if db_path == ":memory:":
                tenant.databases.register_memory(db_name)
            else:
                tenant.databases.register_path(db_name, db_path)
    return registry


def _cmd_serve(args, out) -> int:  # pragma: no cover - interactive
    from repro.http.router import Router
    from repro.http.server import HttpServer
    from repro.obs import (
        REGISTRY, TRACER, FanoutSink, MetricsBridge, SloTracker,
        SlowQueryLog, TailSampler, TraceLog, parse_sample_spec)
    from repro.sql.digest import STATEMENTS

    if args.listen is not None:
        return _cmd_pool_daemon(args, out)
    if args.stream and args.gateway != "inprocess":
        raise SystemExit(
            "--stream requires --gateway inprocess (worker responses "
            "cross the dispatch socket as complete frames)")
    if args.connect and args.gateway != "appserver":
        raise SystemExit("--connect requires --gateway appserver")
    if args.acceptors > 1 and args.edge != "async":
        raise SystemExit("--acceptors requires --edge async "
                         "(SO_REUSEPORT load balancing)")
    if args.acceptors > 1:
        return _cmd_multi_acceptor(args, out)
    metrics = REGISTRY
    consumers = []
    if not args.no_trace:
        TRACER.enable()
        # Aggregating consumers run outside any sampler: metrics and
        # the statement-digest store must see every trace.
        consumers.append(MetricsBridge(
            metrics, slow_query_ms=args.slow_query_ms))
        STATEMENTS.enabled = True
        consumers.append(STATEMENTS)
    file_sinks = []
    if args.trace_log is not None:
        file_sinks.append(TraceLog(args.trace_log))
    slow_log = None
    if args.slow_query_ms is not None:
        slow_log = SlowQueryLog(_slow_query_path(args),
                                args.slow_query_ms,
                                statements=STATEMENTS)
        file_sinks.append(slow_log)
    sampler = None
    if args.trace_sample and file_sinks:
        try:
            sample_kwargs = parse_sample_spec(args.trace_sample)
        except ValueError as exc:
            raise SystemExit(f"bad --trace-sample: {exc}")
        # The shedder's interactive SLO doubles as the sampler's
        # keep-it-always latency bar unless the spec overrides it.
        sample_kwargs.setdefault("slo_ms", args.slo_ms)
        # No registry= here: the trace_sampler stats source below
        # already renders kept/dropped (plus the per-reason split);
        # live counters too would duplicate the scrape sample names.
        sampler = TailSampler(*file_sinks, **sample_kwargs)
        file_sinks = [sampler]
    consumers.extend(file_sinks)
    fanout = None
    if consumers:
        # One fused, deferred sink: the request thread only enqueues
        # the finished tree; a drain thread summarizes it once and
        # fans the summary out to every consumer.  Scrape reads flush
        # first (router.obs_flush below), so aggregates stay exact.
        fanout = FanoutSink(*consumers, defer_cap=1024)
        TRACER.add_sink(fanout)
    dispatcher = None
    log = None
    stats_sources = []
    labeled_sources = []
    if not args.no_trace:
        stats_sources.append(("statements", STATEMENTS.stats))
        labeled_sources.append(
            ("statement", "digest", STATEMENTS.labeled_stats))
    if sampler is not None:
        stats_sources.append(("trace_sampler", sampler.stats))
    if args.gateway == "inprocess":
        registry = DatabaseRegistry()
        for name, path in _parse_bindings(args.database, "--database"):
            registry.register_path(name, path)
        sharded = _apply_sharding(args, registry)
        config = EngineConfig()
        if args.query_cache > 0:
            from repro.sql.querycache import QueryResultCache
            config.query_cache = QueryResultCache(
                max_entries=args.query_cache)
        _apply_resilience(args, registry, config)
        engine = MacroEngine(registry, config=config)
        library = MacroLibrary(args.macros, stat_ttl=args.macro_stat_ttl)
        from repro.apps.site import build_site
        site = build_site(engine, library, stream=args.stream)
        router = site.router
        stats_sources.append(("resilience", registry.resilience_stats))
        if sharded:
            # Labeled view: shard index travels as a label value while
            # the legacy shard_<idx>_<counter> keys keep rendering.
            labeled_sources.append(
                ("shard", "shard", registry.shard_labeled_stats))
        if config.query_cache is not None:
            stats_sources.append(("query_cache", config.query_cache.stats))
    else:
        from repro.cgi.gateway import CgiGateway
        gateway = CgiGateway()
        if args.gateway == "subprocess":
            from repro.cgi.process import SubprocessCgiRunner
            gateway.install("db2www",
                            SubprocessCgiRunner(extra_env=_worker_env(args)))
        elif args.connect:
            from repro.appserver import TcpPoolDispatcher
            dispatcher = TcpPoolDispatcher(args.connect,
                                           channels=args.workers)
            gateway.install("db2www", dispatcher)
            stats_sources.append(("appserver", dispatcher.stats))
        else:
            from repro.appserver import AppServerDispatcher
            dispatcher = AppServerDispatcher(
                _worker_env(args), workers=args.workers,
                recycle_after=args.recycle_after)
            gateway.install("db2www", dispatcher)
            stats_sources.append(("appserver", dispatcher.stats))
        router = Router(gateway=gateway, server_name=args.host)
    tenant_registry = None
    if args.tenant_config is not None:
        from repro.tenancy import TenantHost

        shared_cache = None
        if args.query_cache > 0:
            from repro.sql.querycache import QueryResultCache
            shared_cache = QueryResultCache(max_entries=args.query_cache)
        tenant_registry = _load_tenant_config(args.tenant_config,
                                              query_cache=shared_cache)
        # Tenant dispatch is in-process on both edges regardless of
        # --gateway: each tenant runs its own engine over its scoped
        # registry view.
        router.tenants = TenantHost(tenant_registry)
        labeled_sources.append(
            ("tenant", "tenant", tenant_registry.labeled_stats))
    # One registry feeds every read path: /metrics, /statusz, the
    # access log's #stats trailer, and `repro stats`.
    router.metrics = metrics
    if fanout is not None:
        router.obs_flush = fanout.flush
    if not args.no_trace:
        router.statements = STATEMENTS
    # Burn-rate gauges ride the same counters/histogram the router
    # maintains; args.slo_ms is also the shedder's interactive target.
    slo = SloTracker(metrics, latency_slo_ms=args.slo_ms)
    stats_sources.append(("slo", slo.stats))
    if args.overload:
        from repro.overload import (
            COST_CLASSES, OverloadController, RequestClassifier)
        rules = []
        for spec in args.overload_rules:
            # The class rides after the LAST "=": the substring itself
            # may contain "=" (URL fragments like "USE_DESC=yes").
            substring, sep, cls = spec.rpartition("=")
            if not sep or cls not in COST_CLASSES:
                raise SystemExit(
                    f"bad --overload-rule {spec!r}: expected "
                    f"SUBSTR={'|'.join(COST_CLASSES)}")
            rules.append((substring, cls))
        controller = OverloadController(
            max_concurrent=args.overload_concurrency,
            queue_limit=args.overload_queue,
            interactive_slo_ms=args.slo_ms,
            classifier=RequestClassifier(
                rules=rules or None,
                # Statement-level evidence beats URL heuristics: a
                # target whose digests have proven heavy (or cached)
                # classifies from what its SQL actually cost.
                probe=STATEMENTS.probe if not args.no_trace else None),
            metrics=metrics)
        router.overload = controller
        stats_sources.append(("overload", controller.stats))
    for name, source in stats_sources:
        metrics.attach_stats_source(name, source)
    for prefix, label, source in labeled_sources:
        metrics.attach_labeled_source(prefix, label, source)
    if args.access_log is not None:
        from repro.http.accesslog import AccessLog
        log = AccessLog(args.access_log, metrics=metrics)
        router.access_log = log
    if args.edge == "async":
        from repro.http.async_server import AsyncHttpServer
        server = AsyncHttpServer(
            router, host=args.host, port=args.port,
            backlog=args.backlog,
            reuse_port=args.reuse_port,
            max_connections=args.max_connections
            if args.max_connections is not None else 1024,
            request_deadline=args.request_deadline,
            metrics=metrics).start()
    else:
        server = HttpServer(router, host=args.host, port=args.port,
                            backlog=args.backlog,
                            max_connections=args.max_connections,
                            request_deadline=args.request_deadline).start()
    # Flush each banner line: supervisors (and the smoke test) read the
    # bound address from a pipe, which Python would otherwise buffer.
    print(f"serving macros from {args.macros} on {server.base_url} "
          f"({args.gateway} gateway"
          + (f", {args.workers} workers" if dispatcher else "")
          + (", streaming" if args.stream else "")
          + (", overload control" if args.overload else "")
          + (f", {len(tenant_registry.names())} tenants"
             if tenant_registry is not None else "")
          + (f", {args.edge} edge" if args.edge != "threaded" else "")
          + (", tracing off" if args.no_trace else "") + ")",
          file=out, flush=True)
    print(f"metrics: {server.base_url}/metrics   "
          f"status: {server.base_url}/statusz"
          + (f"   statements: {server.base_url}/statements"
             if not args.no_trace else ""),
          file=out, flush=True)
    print("press Ctrl-C to stop", file=out, flush=True)
    try:
        import signal
        signal.pause()
    except KeyboardInterrupt:
        pass
    finally:
        server.shutdown()
        if fanout is not None:
            # Deferred traces still queued must reach the registry
            # before the trailer below snapshots it.
            fanout.flush()
        if log is not None:
            # Counters survive the process in the log file, where
            # `repro stats` picks them up (before worker teardown, so
            # the live pool size is captured).
            log.append_stats_note()
        if dispatcher is not None:
            dispatcher.shutdown()
    return 0
