"""repro — a reproduction of *Accessing Relational Databases from the
World Wide Web* (Nguyen & Srinivasan, SIGMOD 1996).

The package rebuilds the paper's DB2 WWW Connection system and everything
it stands on: the macro language with cross-language variable substitution
(:mod:`repro.core`), a relational gateway (:mod:`repro.sql`), the CGI
protocol (:mod:`repro.cgi`), an HTTP server/client pair (:mod:`repro.http`),
an HTML substrate with the 1996 form model (:mod:`repro.html`), a
simulated browser (:mod:`repro.browser`), the Section 6 baseline gateways
(:mod:`repro.baselines`), the paper's example applications
(:mod:`repro.apps`) and the practical-issues layer (:mod:`repro.security`).

Quickstart::

    from repro.core import parse_macro, MacroEngine
    from repro.sql import DatabaseRegistry

    registry = DatabaseRegistry()
    db = registry.register_memory("SHOP")
    with db.connect() as conn:
        conn.executescript(
            "CREATE TABLE items (name TEXT); "
            "INSERT INTO items VALUES ('bikes');")

    macro = parse_macro('''
    %DEFINE DATABASE = "SHOP"
    %SQL{ SELECT name FROM items WHERE name LIKE \'$(q)%\' %}
    %HTML_INPUT{<FORM><INPUT NAME="q"></FORM>%}
    %HTML_REPORT{<H1>Items</H1> %EXEC_SQL %}
    ''')
    engine = MacroEngine(registry)
    print(engine.execute_report(macro, [("q", "bik")]).html)
"""

from repro.core import (
    EngineConfig,
    Evaluator,
    MacroCommand,
    MacroEngine,
    MacroFile,
    MacroLibrary,
    MacroResult,
    ValueString,
    VariableStore,
    parse_macro,
)
from repro.errors import (
    MacroError,
    MacroExecutionError,
    MacroSyntaxError,
    ReproError,
    SQLError,
)
from repro.sql import DatabaseRegistry, MemoryDatabase, TransactionMode

__version__ = "1.0.0"

__all__ = [
    "DatabaseRegistry",
    "EngineConfig",
    "Evaluator",
    "MacroCommand",
    "MacroEngine",
    "MacroError",
    "MacroExecutionError",
    "MacroFile",
    "MacroLibrary",
    "MacroResult",
    "MacroSyntaxError",
    "MemoryDatabase",
    "ReproError",
    "SQLError",
    "TransactionMode",
    "ValueString",
    "VariableStore",
    "parse_macro",
    "__version__",
]
