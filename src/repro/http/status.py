"""HTTP status codes and reason phrases (the HTTP/1.0 set plus the few
later additions our gateway emits)."""

from __future__ import annotations

REASONS: dict[int, str] = {
    200: "OK",
    201: "Created",
    202: "Accepted",
    204: "No Content",
    301: "Moved Permanently",
    302: "Found",
    304: "Not Modified",
    400: "Bad Request",
    401: "Unauthorized",
    403: "Forbidden",
    404: "Not Found",
    405: "Method Not Allowed",
    408: "Request Timeout",
    411: "Length Required",
    413: "Payload Too Large",
    414: "URI Too Long",
    429: "Too Many Requests",
    500: "Internal Server Error",
    501: "Not Implemented",
    502: "Bad Gateway",
    503: "Service Unavailable",
    504: "Gateway Timeout",
}


def reason_for(status: int) -> str:
    """Reason phrase for a status code (generic class name if unknown)."""
    if status in REASONS:
        return REASONS[status]
    generic = {1: "Informational", 2: "Success", 3: "Redirection",
               4: "Client Error", 5: "Server Error"}
    return generic.get(status // 100, "Unknown")
