"""A keep-alive HTTP client: one TCP connection, many requests.

The plain :class:`repro.http.client.HttpClient` is the strict HTTP/1.0
one-connection-per-request client.  This one sends ``Connection:
Keep-Alive`` and reuses the socket while the server agrees — reading
responses by ``Content-Length`` instead of connection close — which is
how Netscape 1.x cut page-load latency and what the EXT-KEEPALIVE bench
measures.

With ``http11=True`` requests go out as HTTP/1.1 (persistent by
default) and ``Transfer-Encoding: chunked`` responses are decoded —
the framing the async edge uses for streamed reports, which is what
lets a streaming response *not* cost the connection.
"""

from __future__ import annotations

import socket

from repro.errors import HttpError
from repro.http.inprocess import Transport
from repro.http.message import HttpRequest, HttpResponse
from repro.http.urls import Url

_RECV_CHUNK = 8192
_MAX_HEAD = 64 * 1024


class PersistentHttpClient(Transport):
    """Fetches URLs over reusable TCP connections (one per netloc)."""

    def __init__(self, *, timeout: float = 10.0, http11: bool = False):
        self.timeout = timeout
        #: speak HTTP/1.1 — persistent connections by default, chunked
        #: response bodies decoded.
        self.http11 = http11
        self._sockets: dict[str, socket.socket] = {}
        self._buffers: dict[str, bytes] = {}

    # -- transport interface ------------------------------------------------

    #: methods whose requests are safe to replay (RFC 1945 idempotence)
    _REPLAYABLE = frozenset({"GET", "HEAD"})

    def fetch(self, url: Url, request: HttpRequest) -> HttpResponse:
        request.headers.setdefault("Host", url.netloc)
        if self.http11:
            request.version = "HTTP/1.1"
        else:
            request.headers.set("Connection", "Keep-Alive")
        key = f"{url.host}:{url.port}"
        sent = [False]
        try:
            return self._fetch_on(key, url, request, sent)
        except (HttpError, OSError):
            # The server may have closed an idle connection between
            # requests; retry once on a fresh socket — but only when the
            # replay cannot repeat a side effect: an idempotent method,
            # or a request none of whose bytes ever left this client.  A
            # POST that failed after (partial) send may already have
            # reached the server; replaying it could double a write.
            self._drop(key)
            if request.method.upper() not in self._REPLAYABLE and sent[0]:
                raise
            return self._fetch_on(key, url, request, [False])

    def close(self) -> None:
        for key in list(self._sockets):
            self._drop(key)

    def __enter__(self) -> "PersistentHttpClient":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -- internals -----------------------------------------------------------

    def _fetch_on(self, key: str, url: Url, request: HttpRequest,
                  sent: list[bool]) -> HttpResponse:
        conn = self._sockets.get(key)
        if conn is None:
            conn = socket.create_connection((url.host, url.port),
                                            timeout=self.timeout)
            self._sockets[key] = conn
            self._buffers[key] = b""
        payload = request.serialize()
        sent[0] = True  # from here on, bytes may have hit the wire
        conn.sendall(payload)
        response, remaining = self._read_response(
            conn, self._buffers.get(key, b""))
        self._buffers[key] = remaining
        if "keep-alive" not in \
                response.headers.get("Connection", "").lower():
            self._drop(key)
        return response

    def _read_response(self, conn: socket.socket,
                       buffer: bytes) -> tuple[HttpResponse, bytes]:
        data = buffer
        separator = b"\r\n\r\n"
        while separator not in data and b"\n\n" not in data:
            if len(data) > _MAX_HEAD:
                raise HttpError("response head exceeds limit")
            chunk = conn.recv(_RECV_CHUNK)
            if not chunk:
                raise HttpError("connection closed mid-response")
            data += chunk
        if separator not in data:
            separator = b"\n\n"
        head, _, rest = data.partition(separator)
        if _is_chunked(head):
            body, remaining = _decode_chunked(conn, rest)
            return HttpResponse.parse(head + separator + body), remaining
        length = _content_length(head)
        if length is None:
            # No Content-Length: fall back to read-until-close (and the
            # connection is then unusable for keep-alive).
            while True:
                chunk = conn.recv(_RECV_CHUNK)
                if not chunk:
                    break
                rest += chunk
            return HttpResponse.parse(head + separator + rest), b""
        while len(rest) < length:
            chunk = conn.recv(_RECV_CHUNK)
            if not chunk:
                break
            rest += chunk
        body, remaining = rest[:length], rest[length:]
        return HttpResponse.parse(head + separator + body), remaining

    def _drop(self, key: str) -> None:
        conn = self._sockets.pop(key, None)
        self._buffers.pop(key, None)
        if conn is not None:
            try:
                conn.close()
            except OSError:
                pass


def _is_chunked(head: bytes) -> bool:
    for line in head.split(b"\n"):
        name, sep, value = line.decode("latin-1", "replace").partition(":")
        if sep and name.strip().lower() == "transfer-encoding":
            return "chunked" in value.lower()
    return False


def _decode_chunked(conn: socket.socket,
                    data: bytes) -> tuple[bytes, bytes]:
    """Decode a chunked body; returns ``(body, bytes_past_the_body)``.

    The surplus bytes belong to the next pipelined response, exactly
    like the Content-Length path's ``remaining``.
    """
    body = b""
    while True:
        while b"\r\n" not in data:
            chunk = conn.recv(_RECV_CHUNK)
            if not chunk:
                raise HttpError("connection closed mid-chunk-size")
            data += chunk
        line, _, data = data.partition(b"\r\n")
        try:
            size = int(line.split(b";")[0].strip() or b"0", 16)
        except ValueError as exc:
            raise HttpError(f"malformed chunk size {line!r}") from exc
        if size == 0:
            # No trailers are ever sent here; consume the final CRLF.
            while len(data) < 2:
                chunk = conn.recv(_RECV_CHUNK)
                if not chunk:
                    break  # server closed right after the 0-chunk
                data += chunk
            if data.startswith(b"\r\n"):
                data = data[2:]
            return body, data
        while len(data) < size + 2:
            chunk = conn.recv(_RECV_CHUNK)
            if not chunk:
                raise HttpError("connection closed mid-chunk")
            data += chunk
        body += data[:size]
        data = data[size + 2:]  # chunk payload, then its CRLF


def _content_length(head: bytes) -> int | None:
    for line in head.split(b"\n"):
        name, sep, value = line.decode("latin-1", "replace").partition(":")
        if sep and name.strip().lower() == "content-length":
            try:
                return max(0, int(value.strip()))
            except ValueError:
                return None
    return None
