"""A socket HTTP client — the network half of a Web client.

Implements the :class:`repro.http.inprocess.Transport` interface over real
TCP, one connection per request (HTTP/1.0), so the simulated browser can
talk to the socket server exactly as it talks to the in-process router.
"""

from __future__ import annotations

import socket

from repro.errors import HttpError
from repro.http.inprocess import Transport
from repro.http.message import HttpRequest, HttpResponse
from repro.http.urls import Url

_RECV_CHUNK = 8192


class HttpClient(Transport):
    """Fetches URLs over TCP sockets."""

    def __init__(self, *, timeout: float = 10.0):
        self.timeout = timeout

    def fetch(self, url: Url, request: HttpRequest) -> HttpResponse:
        request.headers.setdefault("Host", url.netloc)
        request.headers.setdefault("User-Agent", "repro-browser/1.0")
        try:
            with socket.create_connection(
                    (url.host, url.port), timeout=self.timeout) as conn:
                conn.sendall(request.serialize())
                conn.shutdown(socket.SHUT_WR)
                chunks: list[bytes] = []
                while True:
                    chunk = conn.recv(_RECV_CHUNK)
                    if not chunk:
                        break
                    chunks.append(chunk)
        except OSError as exc:
            raise HttpError(f"connection to {url.netloc} failed: {exc}") \
                from exc
        raw = b"".join(chunks)
        if not raw:
            raise HttpError(f"empty response from {url.netloc}")
        return HttpResponse.parse(raw)
