"""In-process transport: the router without sockets.

Figure 1's arrangement — browsers on many machines talking to a server
over the internet — collapses, for deterministic tests and fast
benchmarks, to a direct call into the same :class:`Router` the socket
server uses.  The transport interface (``fetch``) is shared with
:class:`repro.http.client.HttpClient`, so the simulated browser works
identically over either.
"""

from __future__ import annotations

from repro.http.message import HttpRequest, HttpResponse
from repro.http.router import Router
from repro.http.urls import Url


class Transport:
    """The interface the browser drives: fetch a request for a URL."""

    def fetch(self, url: Url,
              request: HttpRequest) -> HttpResponse:  # pragma: no cover
        raise NotImplementedError


class InProcessTransport(Transport):
    """Dispatches requests directly into a router.

    ``hosts`` maps ``host:port`` network locations onto routers, so a test
    can stand up several "servers" (the multi-workstation world of
    Figure 1) in one process.  A single-router constructor form covers the
    common case.
    """

    def __init__(self, router: Router | None = None):
        self._hosts: dict[str, Router] = {}
        self._default = router
        if router is not None:
            self.add_host(router.server_name, router.server_port, router)

    def add_host(self, name: str, port: int, router: Router) -> None:
        self._hosts[f"{name.lower()}:{port}"] = router

    def fetch(self, url: Url, request: HttpRequest) -> HttpResponse:
        router = self._hosts.get(f"{url.host}:{url.port}", self._default)
        if router is None:
            from repro.http.router import _error
            return _error(502, f"no route to host {url.netloc!r}")
        # Round-trip through the wire format so in-process behaviour can
        # not silently diverge from what sockets would carry.
        parsed = HttpRequest.parse(request.serialize())
        response = router.handle(parsed)
        # No socket to stream over: materialise close-delimited bodies,
        # exactly what a client reading until close would have seen.
        response.drain()
        return response
