"""The asyncio HTTP edge: keep-alive, pipelining, chunked streaming.

The threaded server (:mod:`repro.http.server`) is the paper's 1996
front end: a thread per connection, close-delimited streams.  This is
the same edge rebuilt for the ROADMAP's "millions of users" frontier —
one event loop multiplexing every connection, so concurrency costs a
coroutine instead of a thread:

* **Keep-alive and pipelining.**  Requests are read off a
  per-connection byte buffer; bytes beyond the current request (a
  pipelined client sends several at once) carry over to the next parse
  instead of being dropped, and responses go back in request order.
* **Chunked streaming.**  Streamed reports no longer cost the
  connection: an HTTP/1.1 client gets ``Transfer-Encoding: chunked``
  (each engine chunk framed as it is produced) and the connection
  survives for the next request.  HTTP/1.0 clients still get the
  close-delimited stream the threaded edge sends.
* **Write backpressure.**  Every write awaits ``drain()``; a slow
  reader suspends only its own coroutine, and the engine-side producer
  blocks on a bounded queue — a client that stops reading stops the
  query, it does not balloon server memory.
* **Bounded connection budget.**  Past ``max_connections`` the edge
  answers an immediate 503 and closes — shedding at the door instead
  of queueing into collapse.
* **Multi-acceptor.**  With ``reuse_port=True`` several server
  processes bind the same port via ``SO_REUSEPORT`` and the kernel
  load-balances accepts across them (``repro serve --acceptors N``).

Routing is the same :class:`~repro.http.router.Router` the threaded
edge uses, called in-loop for cheap static pages and pushed to a small
thread pool for ``/cgi-bin/`` work (the router is synchronous and a
macro request blocks on the worker pool).  Streaming generators are
driven inside **one** executor thread per response — the engine's
sqlite handles have thread affinity — with chunks handed to the event
loop over a bounded queue.

Edge health is exported through the obs registry (``edge_*`` gauges
and counters) and therefore shows up on ``/statusz`` and ``/metrics``.
"""

from __future__ import annotations

import asyncio
import functools
import socket
import threading
from concurrent.futures import ThreadPoolExecutor
from typing import Iterator, Optional

from repro.errors import BadRequestError
from repro.http.headers import Headers
from repro.http.message import (
    HttpRequest,
    HttpResponse,
    content_length_of,
    html_response,
)
from repro.http.router import CGI_PREFIX, Router
from repro.obs.trace import new_trace_id
from repro.overload.retryafter import retry_after_header
from repro.resilience.deadline import Deadline

_MAX_HEAD = 64 * 1024
_MAX_BODY = 8 * 1024 * 1024
_READ_CHUNK = 65536
#: writes buffered beyond this before ``drain()`` count as backpressure
_HIGH_WATER = 64 * 1024
#: engine chunks in flight between producer thread and event loop
_STREAM_BUFFER = 8

_DONE = object()   # stream pump: generator exhausted cleanly
_FAIL = object()   # stream pump: generator raised mid-stream


class _NullMetric:
    """Stands in for every edge metric when no registry is attached."""

    def inc(self, amount: float = 1.0) -> None:
        pass

    def set(self, value: float) -> None:
        pass


_NULL = _NullMetric()


class AsyncHttpServer:
    """Serve a router from an asyncio event loop in a background thread.

    API-compatible with :class:`repro.http.server.HttpServer` — same
    constructor shape, ``start``/``shutdown``, context manager,
    ``base_url`` — so tests, benchmarks and the CLI swap edges with one
    flag.
    """

    def __init__(self, router: Router, *, host: str = "127.0.0.1",
                 port: int = 0, timeout: float = 10.0,
                 idle_timeout: float | None = None,
                 keep_alive_max: int = 1000,
                 max_connections: int = 1024,
                 backlog: int = 512,
                 reuse_port: bool = False,
                 offload: str = "auto",
                 executor_threads: int = 8,
                 request_deadline: float | None = None,
                 metrics=None):
        if offload not in ("auto", "always", "never"):
            raise ValueError(f"offload must be auto/always/never, "
                             f"not {offload!r}")
        self.router = router
        self.timeout = timeout
        #: per-request wall-clock budget (seconds), minted when the
        #: request is fully parsed.  The budget covers the executor
        #: hand-off too: a request whose deadline expires while queued
        #: for an executor thread answers 504 *without* ever touching
        #: the router or the gateway behind it.
        self.request_deadline = request_deadline
        self.idle_timeout = idle_timeout if idle_timeout is not None \
            else timeout
        self.keep_alive_max = keep_alive_max
        self.max_connections = max_connections
        self.backlog = backlog
        #: "auto" pushes ``/cgi-bin/`` requests (which block on the
        #: worker pool) to the executor and serves static pages in-loop;
        #: "always"/"never" force one side (benchmarks use both).
        self.offload = offload
        self.executor_threads = executor_threads
        self.metrics = metrics
        self._listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        if reuse_port:
            # Several acceptor processes share the port; the kernel
            # spreads incoming connections across their accept queues.
            self._listener.setsockopt(socket.SOL_SOCKET,
                                      socket.SO_REUSEPORT, 1)
        self._listener.bind((host, port))
        self._listener.listen(backlog)
        self._listener.setblocking(False)
        self.host, self.port = self._listener.getsockname()
        router.server_name = self.host
        router.server_port = self.port
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._stop: Optional[asyncio.Event] = None
        self._executor: Optional[ThreadPoolExecutor] = None
        self._thread: Optional[threading.Thread] = None
        self._started = threading.Event()
        self._conn_tasks: set[asyncio.Task] = set()
        self._active = 0
        self._bind_metrics()

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> "AsyncHttpServer":
        self._thread = threading.Thread(target=self._run_loop,
                                        name="repro-async-httpd",
                                        daemon=True)
        self._thread.start()
        self._started.wait(timeout=10.0)
        return self

    def shutdown(self) -> None:
        loop, stop = self._loop, self._stop
        if loop is not None and stop is not None and not loop.is_closed():
            try:
                loop.call_soon_threadsafe(stop.set)
            except RuntimeError:
                pass  # loop already gone
        if self._thread is not None:
            self._thread.join(timeout=10.0)
        self._listener.close()

    def __enter__(self) -> "AsyncHttpServer":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.shutdown()

    @property
    def base_url(self) -> str:
        return f"http://{self.host}:{self.port}"

    @property
    def active_connections(self) -> int:
        return self._active

    # -- event loop --------------------------------------------------------

    def _run_loop(self) -> None:
        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)
        self._loop = loop
        try:
            loop.run_until_complete(self._main())
        finally:
            asyncio.set_event_loop(None)
            loop.close()

    async def _main(self) -> None:
        self._stop = asyncio.Event()
        self._executor = ThreadPoolExecutor(
            max_workers=self.executor_threads,
            thread_name_prefix="repro-edge")
        server = await asyncio.start_server(self._serve_connection,
                                            sock=self._listener)
        self._started.set()
        try:
            await self._stop.wait()
        finally:
            server.close()
            await server.wait_closed()
            for task in list(self._conn_tasks):
                task.cancel()
            if self._conn_tasks:
                await asyncio.gather(*self._conn_tasks,
                                     return_exceptions=True)
            self._executor.shutdown(wait=False)

    # -- connection handling -----------------------------------------------

    async def _serve_connection(self, reader: asyncio.StreamReader,
                                writer: asyncio.StreamWriter) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._conn_tasks.add(task)
        self._m_conns_total.inc()
        if self._active >= self.max_connections:
            self._m_shed.inc()
            await self._shed(writer)
            if task is not None:
                self._conn_tasks.discard(task)
            return
        self._active += 1
        self._m_conns_active.set(self._active)
        try:
            await self._connection_loop(reader, writer)
        except (asyncio.CancelledError, asyncio.TimeoutError,
                ConnectionError, OSError):
            pass
        finally:
            self._active -= 1
            self._m_conns_active.set(self._active)
            if task is not None:
                self._conn_tasks.discard(task)
            await _close_writer(writer)

    async def _connection_loop(self, reader: asyncio.StreamReader,
                               writer: asyncio.StreamWriter) -> None:
        peername = writer.get_extra_info("peername")
        remote_addr = peername[0] if peername else "127.0.0.1"
        sock = writer.get_extra_info("socket")
        if sock is not None:
            # Without this, pipelined sub-MSS responses sit in the
            # kernel behind Nagle waiting out the peer's delayed ACK —
            # a fixed ~40 ms stall per burst.
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        loop = asyncio.get_running_loop()
        buffer = b""
        served = 0
        while served < self.keep_alive_max:
            try:
                raw, buffer = await self._read_request(reader, buffer)
            except BadRequestError as exc:
                # Ambiguous framing poisons everything pipelined behind
                # it: answer 400 and drop the connection.
                await self._write_response(
                    writer, _bad_request(exc, self._mint_trace_id()),
                    keep_alive=False)
                return
            if raw is None:
                return
            self._m_requests.inc()
            keep_alive = False
            http11 = False
            try:
                request = HttpRequest.parse(raw)
                http11 = request.version == "HTTP/1.1"
                keep_alive = _keeps_alive(request, http11)
                trace_id = new_trace_id() \
                    if self.router.tracer.enabled else ""
                deadline = Deadline.after(self.request_deadline) \
                    if self.request_deadline else None
                handle = functools.partial(self.router.handle, request,
                                           remote_addr=remote_addr,
                                           trace_id=trace_id,
                                           deadline=deadline)
                if self._offloads(request):
                    response = await loop.run_in_executor(
                        self._executor,
                        self._guarded(handle, deadline))
                else:
                    response = handle()
            except BadRequestError as exc:
                response = _bad_request(exc, self._mint_trace_id())
                keep_alive = False
            served += 1
            if served >= self.keep_alive_max:
                keep_alive = False
            if http11:
                # Answer in the client's dialect: an HTTP/1.1 request
                # gets an HTTP/1.1 status line (clients gate pipelining
                # and default keep-alive on the response version).
                response.version = "HTTP/1.1"
            if response.streaming:
                if http11:
                    # Chunked framing: the stream no longer costs the
                    # connection (the threaded edge must close here).
                    self._m_chunked.inc()
                    ok = await self._send_chunked(writer, response,
                                                  keep_alive)
                    if not ok or not keep_alive:
                        return
                    continue
                await self._send_close_delimited(writer, response)
                return
            await self._write_response(writer, response,
                                       keep_alive=keep_alive)
            if not keep_alive:
                return

    def _offloads(self, request: HttpRequest) -> bool:
        if self.offload == "never":
            return False
        if self.offload == "always":
            return True
        return request.path.startswith(CGI_PREFIX)

    def _guarded(self, handle, deadline):
        """Wrap a router call with a deadline check run *in the
        executor thread*.

        Under load the executor's own queue is an invisible admission
        queue: a request can wait there longer than its whole budget.
        Checking at the moment a thread finally picks it up turns that
        wasted work into an immediate 504 — the router, admission queue
        and worker pool never see the corpse.
        """
        if deadline is None:
            return handle

        def run() -> HttpResponse:
            if deadline.expired:
                self._m_deadline_expired.inc()
                return _gateway_timeout(self._mint_trace_id())
            return handle()

        return run

    # -- request reading ---------------------------------------------------

    async def _read_request(self, reader: asyncio.StreamReader,
                            buffer: bytes) -> tuple[bytes | None, bytes]:
        """One full request off the connection, pipelining-aware.

        ``buffer`` holds bytes already read past the previous request;
        returns ``(request_bytes, remaining_buffer)`` with ``None`` on
        clean EOF or timeout.  Framing violations (oversized head,
        ambiguous Content-Length, oversized declared body) raise
        :class:`BadRequestError` — unlike EOF there is a peer there to
        tell.
        """
        data = buffer
        separator = b"\r\n\r\n"
        while separator not in data and b"\n\n" not in data:
            if len(data) > _MAX_HEAD:
                raise BadRequestError(
                    f"request head exceeds {_MAX_HEAD} bytes")
            timeout = self.idle_timeout if not data else self.timeout
            try:
                chunk = await asyncio.wait_for(reader.read(_READ_CHUNK),
                                               timeout)
            except asyncio.TimeoutError:
                return None, b""
            if not chunk:
                return None, b""
            data += chunk
        if separator not in data:
            separator = b"\n\n"
        head, _, rest = data.partition(separator)
        if len(head) > _MAX_HEAD:
            # The terminator and the overflow can arrive in one read;
            # the in-loop check alone would admit such a head.
            raise BadRequestError(
                f"request head exceeds {_MAX_HEAD} bytes")
        content_length = content_length_of(head)
        if content_length > _MAX_BODY:
            raise BadRequestError(
                f"declared body of {content_length} bytes exceeds the "
                f"{_MAX_BODY}-byte limit")
        while len(rest) < content_length:
            try:
                chunk = await asyncio.wait_for(reader.read(_READ_CHUNK),
                                               self.timeout)
            except asyncio.TimeoutError:
                return None, b""
            if not chunk:
                break
            rest += chunk
        body, remaining = rest[:content_length], rest[content_length:]
        return head + separator + body, remaining

    # -- response writing --------------------------------------------------

    async def _write(self, writer: asyncio.StreamWriter,
                     data: bytes) -> None:
        """Write then ``drain()`` — the per-connection backpressure.

        A slow reader fills the transport buffer; past the high-water
        mark ``drain()`` suspends this coroutine (and only this one)
        until the client catches up.
        """
        writer.write(data)
        transport = writer.transport
        if transport is not None and \
                transport.get_write_buffer_size() > _HIGH_WATER:
            self._m_backpressure.inc()
        await writer.drain()

    async def _write_response(self, writer: asyncio.StreamWriter,
                              response: HttpResponse, *,
                              keep_alive: bool) -> None:
        response.headers.set("Connection",
                             "Keep-Alive" if keep_alive else "close")
        await self._write(writer, response.serialize())

    def _mint_trace_id(self) -> str:
        """A correlation id for responses built before routing (the
        400/503/504 paths open no span but still answer with an
        ``X-Trace-Id`` the client can quote)."""
        return new_trace_id() if self.router.tracer.enabled else ""

    async def _shed(self, writer: asyncio.StreamWriter) -> None:
        response = html_response(
            "<H1>503 Service Unavailable</H1>"
            "<P>connection budget exhausted; retry shortly</P>",
            status=503)
        controller = getattr(self.router, "overload", None)
        hint = controller.retry_after_hint() \
            if controller is not None else None
        response.headers.set("Retry-After", retry_after_header(hint))
        trace_id = self._mint_trace_id()
        if trace_id:
            response.headers.set("X-Trace-Id", trace_id)
        try:
            await self._write_response(writer, response, keep_alive=False)
        except (ConnectionError, OSError):
            pass
        finally:
            await _close_writer(writer)

    async def _send_close_delimited(self, writer: asyncio.StreamWriter,
                                    response: HttpResponse) -> None:
        """HTTP/1.0 streaming: the close is the framing (threaded-edge
        parity, byte for byte)."""
        await self._write(writer, response.serialize_head())
        if response.body:
            await self._write(writer, response.body)
        assert response.body_iter is not None
        await self._pump(writer, response.body_iter, chunked=False)

    async def _send_chunked(self, writer: asyncio.StreamWriter,
                            response: HttpResponse,
                            keep_alive: bool) -> bool:
        """HTTP/1.1 chunked streaming; ``False`` means the stream died
        mid-body and the connection must close (the truncation *is* the
        error signal — chunked framing has no mid-stream status)."""
        headers = Headers(response.headers.items())
        headers.set("Transfer-Encoding", "chunked")
        headers.setdefault("Content-Type", "text/html")
        headers.set("Connection",
                    "Keep-Alive" if keep_alive else "close")
        head = (f"HTTP/1.1 {response.status} {response.reason}\r\n"
                + headers.serialize() + "\r\n").encode("latin-1")
        await self._write(writer, head)
        if response.body:
            # The buffered prefix (page header emitted before the first
            # row) rides as the first chunk.
            await self._write(writer, _chunk(response.body))
        assert response.body_iter is not None
        ok = await self._pump(writer, response.body_iter, chunked=True)
        if ok:
            await self._write(writer, b"0\r\n\r\n")
        return ok

    async def _pump(self, writer: asyncio.StreamWriter,
                    body_iter: Iterator[bytes], *,
                    chunked: bool) -> bool:
        """Drive a synchronous body generator from one executor thread.

        The generator touches sqlite cursors with thread affinity, so
        every ``__next__`` must run in the same thread: one producer
        thread iterates it to completion, handing chunks to this
        coroutine over a bounded queue (the engine stalls when the
        client does).  The iterator's ``close`` runs in that thread no
        matter what — streamed transactions settle their brackets even
        when the client vanishes mid-page.
        """
        loop = asyncio.get_running_loop()
        handoff: "asyncio.Queue[object]" = asyncio.Queue(
            maxsize=_STREAM_BUFFER)
        abort = threading.Event()

        def produce() -> None:
            sentinel = _DONE
            try:
                for chunk in body_iter:
                    if abort.is_set():
                        break
                    if not chunk:
                        continue
                    asyncio.run_coroutine_threadsafe(
                        handoff.put(chunk), loop).result()
            except BaseException:
                sentinel = _FAIL
            finally:
                close = getattr(body_iter, "close", None)
                if close is not None:
                    close()
                try:
                    asyncio.run_coroutine_threadsafe(
                        handoff.put(sentinel), loop).result(timeout=5.0)
                except (RuntimeError, TimeoutError):
                    pass  # loop shut down under us; nothing to signal

        assert self._executor is not None
        producer = loop.run_in_executor(self._executor, produce)
        ok = True
        try:
            while True:
                item = await handoff.get()
                if item is _DONE:
                    break
                if item is _FAIL:
                    ok = False
                    break
                try:
                    await self._write(
                        writer, _chunk(item) if chunked else item)
                except (ConnectionError, OSError):
                    ok = False
                    abort.set()
                    break
        finally:
            # Free a producer blocked on a full queue, then let it
            # finish closing the generator.
            abort.set()
            while not handoff.empty():
                handoff.get_nowait()
            try:
                await producer
            except asyncio.CancelledError:
                raise
            except Exception:
                ok = False
        return ok

    # -- metrics -----------------------------------------------------------

    def _bind_metrics(self) -> None:
        registry = self.metrics if self.metrics is not None \
            else getattr(self.router, "metrics", None)
        if registry is None:
            self._m_conns_active = _NULL
            self._m_conns_total = _NULL
            self._m_requests = _NULL
            self._m_shed = _NULL
            self._m_chunked = _NULL
            self._m_backpressure = _NULL
            self._m_deadline_expired = _NULL
            return
        self._m_conns_active = registry.gauge("edge_connections_active")
        self._m_conns_total = registry.counter("edge_connections_total")
        self._m_requests = registry.counter("edge_requests_total")
        self._m_shed = registry.counter("edge_shed_total")
        self._m_chunked = registry.counter("edge_responses_chunked_total")
        self._m_backpressure = registry.counter(
            "edge_backpressure_waits_total")
        self._m_deadline_expired = registry.counter(
            "edge_deadline_expired_total")


def _keeps_alive(request: HttpRequest, http11: bool) -> bool:
    tokens = request.headers.get("Connection", "").lower()
    if http11:
        return "close" not in tokens  # persistent unless asked not to
    return "keep-alive" in tokens     # 1.0: opt-in, Netscape-style


def _chunk(data: bytes) -> bytes:
    return b"%x\r\n%s\r\n" % (len(data), data)


def _bad_request(exc: BadRequestError,
                 trace_id: str = "") -> HttpResponse:
    response = html_response(f"<H1>400 Bad Request</H1><P>{exc}</P>",
                             status=400)
    if trace_id:
        response.headers.set("X-Trace-Id", trace_id)
    return response


def _gateway_timeout(trace_id: str = "") -> HttpResponse:
    response = html_response(
        "<H1>504 Gateway Timeout</H1>"
        "<P>request deadline expired before processing began</P>",
        status=504)
    if trace_id:
        response.headers.set("X-Trace-Id", trace_id)
    return response


async def _close_writer(writer: asyncio.StreamWriter) -> None:
    try:
        writer.close()
        await writer.wait_closed()
    except (ConnectionError, OSError, asyncio.CancelledError):
        pass
