"""HTTP header collection: ordered, case-insensitive, repeat-capable."""

from __future__ import annotations

from typing import Iterator, Optional


class Headers:
    """An ordered multimap of HTTP headers.

    Lookup is case-insensitive (RFC 1945 §4.2); insertion order and the
    original spelling are preserved for serialisation.
    """

    def __init__(self, items: Optional[list[tuple[str, str]]] = None):
        self._items: list[tuple[str, str]] = list(items or [])

    # -- mutation --------------------------------------------------------

    def add(self, name: str, value: str) -> None:
        self._items.append((name, value))

    def set(self, name: str, value: str) -> None:
        """Replace all occurrences of ``name`` with a single value."""
        folded = name.lower()
        self._items = [(k, v) for k, v in self._items
                       if k.lower() != folded]
        self._items.append((name, value))

    def setdefault(self, name: str, value: str) -> None:
        if name not in self:
            self.add(name, value)

    def remove(self, name: str) -> None:
        folded = name.lower()
        self._items = [(k, v) for k, v in self._items
                       if k.lower() != folded]

    # -- access ----------------------------------------------------------

    def get(self, name: str, default: str = "") -> str:
        folded = name.lower()
        for key, value in self._items:
            if key.lower() == folded:
                return value
        return default

    def get_all(self, name: str) -> list[str]:
        folded = name.lower()
        return [v for k, v in self._items if k.lower() == folded]

    def __contains__(self, name: str) -> bool:
        folded = name.lower()
        return any(k.lower() == folded for k, _ in self._items)

    def __iter__(self) -> Iterator[tuple[str, str]]:
        return iter(self._items)

    def __len__(self) -> int:
        return len(self._items)

    def items(self) -> list[tuple[str, str]]:
        return list(self._items)

    # -- wire format -------------------------------------------------------

    def serialize(self) -> str:
        return "".join(f"{key}: {value}\r\n" for key, value in self._items)

    @classmethod
    def parse_lines(cls, lines: list[str]) -> "Headers":
        """Parse header lines (no terminating blank line expected).

        Continuation lines (leading whitespace) extend the previous header
        value, as HTTP/1.0 allowed.
        """
        headers = cls()
        for line in lines:
            if not line.strip():
                continue
            if line[0] in " \t" and headers._items:
                name, value = headers._items[-1]
                headers._items[-1] = (name, value + " " + line.strip())
                continue
            name, sep, value = line.partition(":")
            if sep:
                headers.add(name.strip(), value.strip())
        return headers

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Headers({self._items!r})"
