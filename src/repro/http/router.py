"""The web server's request routing: static pages and ``/cgi-bin/``.

"Typically, an organization makes itself accessible to the Web public by
maintaining a home page on a web server" (Section 1) — static HTML files —
while "dynamic creation of Web pages" goes through the CGI protocol
(Section 2.3).  The router implements both halves and is shared by the
socket server and the in-process transport, so every test and benchmark
exercises the same dispatch logic regardless of transport.
"""

from __future__ import annotations

import email.utils
import json
import mimetypes
import time
from pathlib import Path
from typing import Iterator, Optional

from repro.cgi.environ import CgiEnvironment, split_cgi_path
from repro.cgi.gateway import CgiGateway
from repro.cgi.request import CgiRequest
from repro.errors import (
    DeadlineExceededError,
    OverloadShedError,
    UnknownCgiProgramError,
)
from repro.html.entities import escape_html
from repro.http.headers import Headers
from repro.http.message import (
    SUPPORTED_METHODS,
    HttpRequest,
    HttpResponse,
    html_response,
)
from repro.http.urls import normalize_path
from repro.obs.trace import TRACER, Span, new_trace_id
from repro.overload.retryafter import retry_after_header

CGI_PREFIX = "/cgi-bin/"

#: The multi-tenant URL namespace (see repro.tenancy.web.TenantHost).
TENANT_PREFIX = "/t/"

#: Scrape endpoints served when a metrics registry is attached.
METRICS_PATH = "/metrics"
STATUSZ_PATH = "/statusz"

#: Statement-digest analytics (served when a statement store is attached).
STATEMENTS_PATH = "/statements"


class Router:
    """Maps HTTP requests to static files, registered pages, or CGI."""

    def __init__(self, *, document_root: Optional[str | Path] = None,
                 gateway: Optional[CgiGateway] = None,
                 server_name: str = "localhost", server_port: int = 80,
                 access_log=None, metrics=None, tracer=None,
                 overload=None, tenants=None, statements=None):
        self.document_root = (Path(document_root)
                              if document_root is not None else None)
        self.gateway = gateway or CgiGateway()
        self.server_name = server_name
        self.server_port = server_port
        #: optional repro.http.accesslog.AccessLog; every handled
        #: request is recorded in Common Log Format.
        self.access_log = access_log
        #: optional repro.obs.metrics.MetricsRegistry; when attached the
        #: router records request counters + latency histograms and
        #: serves the ``/metrics`` (text scrape) and ``/statusz``
        #: (JSON) endpoints off it.
        self.metrics = metrics
        #: the tracer consulted per request (the process-wide one unless
        #: a test injects its own).
        self.tracer = tracer or TRACER
        #: optional repro.overload.OverloadController; when attached
        #: every request passes admission control first — shed requests
        #: answer 503 + Retry-After (or 504 when their deadline expired
        #: in the queue) without touching the gateway.
        self.overload = overload
        #: optional repro.tenancy.web.TenantHost; when attached, paths
        #: under ``/t/`` dispatch to it — tenant resolution, visibility
        #: auth, quotas and JSON negotiation all live there.  Shared by
        #: both edges because both route through this class.
        self.tenants = tenants
        #: optional repro.sql.digest.StatementStats; when attached the
        #: per-digest statement analytics are served at ``/statements``.
        self.statements = statements
        #: optional zero-arg callable run before any observability read
        #: (``/metrics``, ``/statusz``, ``/statements``).  ``repro
        #: serve`` points this at its deferred trace fanout's ``flush``
        #: so scrapes always see fully-aggregated traces even though
        #: aggregation runs off the request latency path.
        self.obs_flush = None
        self._pages: dict[str, tuple[str, bytes]] = {}
        # per-registry resolved metric objects; rebuilt if self.metrics
        # is swapped (tests do) so _observe pays no name lookups.
        self._observe_cache: Optional[tuple] = None

    # -- registration ------------------------------------------------------

    def add_page(self, path: str, html: str, *,
                 content_type: str = "text/html; charset=utf-8") -> None:
        """Register an in-memory static page (tests, home pages)."""
        if not path.startswith("/"):
            path = "/" + path
        self._pages[path] = (content_type, html.encode("utf-8"))

    # -- dispatch ----------------------------------------------------------

    def handle(self, request: HttpRequest, *,
               remote_addr: str = "127.0.0.1",
               trace_id: str = "",
               deadline=None) -> HttpResponse:
        tracer = self.tracer
        start = time.perf_counter()
        # -- admission control (before any per-request work) --------------
        ticket = None
        if self.overload is not None:
            try:
                ticket = self.overload.admit(request,
                                             client_key=remote_addr,
                                             deadline=deadline)
            except OverloadShedError as exc:
                return self._settle_unadmitted(
                    request, _shed_response(exc), remote_addr, start,
                    trace_id=trace_id)
            except DeadlineExceededError as exc:
                return self._settle_unadmitted(
                    request, _error(504, str(exc)), remote_addr, start,
                    trace_id=trace_id)
        elif deadline is not None and deadline.expired:
            return self._settle_unadmitted(
                request, _error(504, "request deadline expired before "
                                     "dispatch"), remote_addr, start,
                trace_id=trace_id)
        act = None
        if tracer.enabled:
            target = request.path
            if request.query:
                target = f"{request.path}?{request.query}"
            act = tracer.begin(
                "request", trace_id=trace_id or None,
                attrs={"method": request.method, "path": request.path,
                       "target": target})
        try:
            response = self._route(request, remote_addr, deadline)
        except BaseException:
            if ticket is not None:
                self.overload.release(ticket, status=500)
            if act is not None:
                act.span.set("error", True)
                act.finish()
            raise
        if act is not None:
            act.span.set("status", response.status)
            response.headers.set("X-Trace-Id", act.span.trace_id)
        if response.body_iter is not None:
            # Streamed page: bytes are still unknown and the engine keeps
            # working as the transport pulls chunks.  Wrap the stream so
            # the access-log entry carries the true byte count, metrics
            # see the full wall time, the admission slot is held until
            # the stream closes, and the request span stays current
            # around each pull — all settled when the stream closes.
            response.body_iter = self._accounted_stream(
                request, response, remote_addr, act, start,
                response.body_iter, ticket)
            if act is not None:
                act.deactivate()
            return response
        if ticket is not None:
            self.overload.release(ticket, status=response.status)
        elapsed_ms = (time.perf_counter() - start) * 1000.0
        self._observe(request, response, len(response.body), elapsed_ms)
        if self.access_log is not None:
            self.access_log.record(request, response,
                                   remote_addr=remote_addr)
        if act is not None:
            act.finish()
        return response

    def _settle_unadmitted(self, request: HttpRequest,
                           response: HttpResponse, remote_addr: str,
                           start: float, *,
                           trace_id: str = "") -> HttpResponse:
        """Book a shed/expired request: counted and logged, untraced.

        Shedding exists to cost ~nothing, so no span is opened; the
        request still shows up in the metrics and the access log (a
        503 the operator cannot see is a 503 they cannot tune away).
        The response still carries ``X-Trace-Id`` — a shed client's
        support ticket needs something to quote even though no trace
        was recorded.
        """
        if self.tracer.enabled:
            response.headers.set("X-Trace-Id",
                                 trace_id or new_trace_id())
        elapsed_ms = (time.perf_counter() - start) * 1000.0
        self._observe(request, response, len(response.body), elapsed_ms)
        if self.access_log is not None:
            self.access_log.record(request, response,
                                   remote_addr=remote_addr)
        return response

    def _observe(self, request: HttpRequest, response: HttpResponse,
                 size: int, elapsed_ms: float) -> None:
        """Record the per-request counters and the latency histogram."""
        metrics = self.metrics
        if metrics is None:
            return
        cache = self._observe_cache
        if cache is None or cache[0] is not metrics:
            cache = (metrics,
                     metrics.counter("http_requests_total"),
                     metrics.counter("http_errors_total"),
                     metrics.counter("http_response_bytes_total"),
                     metrics.histogram("request_latency_ms"))
            self._observe_cache = cache
        _, requests, errors, resp_bytes, latency = cache
        requests.inc()
        if response.status >= 400:
            errors.inc()
        resp_bytes.inc(size)
        latency.observe(elapsed_ms)

    def _accounted_stream(self, request: HttpRequest,
                          response: HttpResponse, remote_addr: str,
                          act, start: float,
                          body_iter: Iterator[bytes],
                          ticket=None) -> Iterator[bytes]:
        """Wrap a streaming body: count bytes, settle the books at close.

        The generator runs in whatever thread the transport pulls from;
        the request span is (re)activated inside each ``__next__`` and
        deactivated across the ``yield``, so engine-side spans created
        while producing a chunk land under the request while the
        transport's own context stays clean.
        """
        def stream() -> Iterator[bytes]:
            emitted = 0
            emit_span = None
            if act is not None:
                parent = act.span
                emit_span = Span("emit", parent.trace_id, parent.span_id)
                parent.add_child(emit_span)
            try:
                if act is not None:
                    act.activate()
                try:
                    for chunk in body_iter:
                        emitted += len(chunk)
                        if act is not None:
                            act.deactivate()
                        yield chunk
                        if act is not None:
                            act.activate()
                except BaseException as exc:
                    if act is not None:
                        act.span.set("error", type(exc).__name__)
                    raise
            finally:
                if ticket is not None:
                    # The slot is busy for as long as the engine feeds
                    # the stream; release when the last chunk settles.
                    self.overload.release(ticket, status=response.status)
                if emit_span is not None:
                    emit_span.finish()
                # Any buffered prefix went over the wire before the
                # stream; the logged size covers both.
                total = emitted + len(response.body)
                elapsed_ms = (time.perf_counter() - start) * 1000.0
                self._observe(request, response, total, elapsed_ms)
                if self.access_log is not None:
                    self.access_log.record(request, response,
                                           remote_addr=remote_addr,
                                           size=total)
                if act is not None:
                    act.span.set("bytes", total)
                    act.finish()
        return stream()

    def _route(self, request: HttpRequest, remote_addr: str,
               deadline=None) -> HttpResponse:
        if request.method not in SUPPORTED_METHODS:
            return _error(501, f"method {request.method} not implemented")
        path = normalize_path(request.path)
        if self.tenants is not None and path.startswith(TENANT_PREFIX):
            response = self.tenants.handle(self, request, path,
                                           remote_addr, deadline)
        elif path.startswith(CGI_PREFIX):
            response = self._handle_cgi(request, path, remote_addr,
                                        deadline)
        elif request.method == "POST":
            return _error(405, "POST is only supported for CGI programs")
        elif self.metrics is not None and path == METRICS_PATH:
            response = self._serve_metrics()
        elif self.metrics is not None and path == STATUSZ_PATH:
            response = self._serve_statusz()
        elif self.statements is not None and path == STATEMENTS_PATH:
            response = self._serve_statements(request)
        else:
            response = self._handle_static(path, request)
        if request.method == "HEAD":
            response.body = b""
            if response.body_iter is not None:
                # A HEAD answer carries no body; close the stream so its
                # finally blocks (transaction brackets) still run.
                body_iter, response.body_iter = response.body_iter, None
                close = getattr(body_iter, "close", None)
                if close is not None:
                    close()
        return response

    # -- scrape endpoints --------------------------------------------------

    def _flush_obs(self) -> None:
        """Settle deferred trace aggregation before a read (if wired)."""
        if self.obs_flush is not None:
            try:
                self.obs_flush()
            except Exception:  # noqa: BLE001 - a scrape must not 500
                pass           # because the drain hiccuped

    def _serve_metrics(self) -> HttpResponse:
        """The Prometheus-style text scrape."""
        self._flush_obs()
        headers = Headers()
        headers.set("Content-Type",
                    "text/plain; version=0.0.4; charset=utf-8")
        return HttpResponse(status=200, headers=headers,
                            body=self.metrics.render_text().encode("utf-8"))

    def _serve_statusz(self) -> HttpResponse:
        """The JSON status page (nested registry snapshot)."""
        self._flush_obs()
        body = json.dumps(self.metrics.snapshot(), sort_keys=True,
                          indent=2, default=str) + "\n"
        headers = Headers()
        headers.set("Content-Type", "application/json; charset=utf-8")
        return HttpResponse(status=200, headers=headers,
                            body=body.encode("utf-8"))

    def _serve_statements(self, request: HttpRequest) -> HttpResponse:
        """Per-digest statement analytics (``?limit=N`` caps the rows)."""
        self._flush_obs()
        limit = 0
        for part in (request.query or "").split("&"):
            key, _, value = part.partition("=")
            if key == "limit":
                try:
                    limit = max(0, int(value))
                except ValueError:
                    return _error(400, f"bad limit: {value!r}")
        body = json.dumps(self.statements.snapshot(limit=limit),
                          sort_keys=True, indent=2, default=str) + "\n"
        headers = Headers()
        headers.set("Content-Type", "application/json; charset=utf-8")
        return HttpResponse(status=200, headers=headers,
                            body=body.encode("utf-8"))

    # -- CGI ---------------------------------------------------------------

    def _handle_cgi(self, request: HttpRequest, path: str,
                    remote_addr: str, deadline=None) -> HttpResponse:
        try:
            script_name, program, path_info = split_cgi_path(
                path, CGI_PREFIX)
        except ValueError as exc:
            return _error(404, str(exc))
        environ = CgiEnvironment(
            request_method=request.method,
            script_name=script_name,
            path_info=path_info,
            query_string=request.query,
            content_type=request.headers.get("Content-Type"),
            content_length=len(request.body),
            server_name=self.server_name,
            server_port=self.server_port,
            remote_addr=remote_addr,
            http_headers=dict(request.headers.items()),
            trace_id=self.tracer.current_trace_id(),
        )
        cgi_request = CgiRequest(environ=environ, stdin=request.body,
                                 deadline=deadline)
        try:
            cgi_response = self.gateway.dispatch(program, cgi_request)
        except UnknownCgiProgramError as exc:
            return _error(404, str(exc))
        headers = Headers(cgi_response.headers)
        headers.setdefault("Content-Type", "text/html")
        return HttpResponse(status=cgi_response.status, headers=headers,
                            body=cgi_response.body,
                            body_iter=cgi_response.body_iter)

    # -- static files ------------------------------------------------------

    def _handle_static(self, path: str,
                       request: HttpRequest) -> HttpResponse:
        page = self._pages.get(path)
        if page is None and path.endswith("/"):
            page = self._pages.get(path + "index.html")
        if page is not None:
            content_type, body = page
            headers = Headers()
            headers.set("Content-Type", content_type)
            return HttpResponse(status=200, headers=headers, body=body)
        if self.document_root is not None:
            return self._serve_file(path, request)
        return _error(404, f"no such page: {path}")

    def _serve_file(self, path: str,
                    request: HttpRequest) -> HttpResponse:
        assert self.document_root is not None
        relative = path.lstrip("/")
        candidate = (self.document_root / relative).resolve()
        root = self.document_root.resolve()
        # normalize_path already collapsed "..", but symlinks could still
        # escape; re-check containment after resolution.
        if not str(candidate).startswith(str(root)):
            return _error(403, "path escapes the document root")
        if candidate.is_dir():
            candidate = candidate / "index.html"
        if not candidate.is_file():
            return _error(404, f"no such page: {path}")
        # Conditional GET (HTTP/1.0 §10.9): Last-Modified out,
        # If-Modified-Since in, 304 when the file has not changed.
        mtime = int(candidate.stat().st_mtime)
        last_modified = email.utils.formatdate(mtime, usegmt=True)
        since_header = request.headers.get("If-Modified-Since")
        if since_header:
            since = email.utils.parsedate_to_datetime(since_header) \
                if _parseable_date(since_header) else None
            if since is not None and mtime <= since.timestamp():
                headers = Headers()
                headers.set("Last-Modified", last_modified)
                return HttpResponse(status=304, headers=headers)
        content_type, _ = mimetypes.guess_type(str(candidate))
        headers = Headers()
        headers.set("Content-Type", content_type or "text/html")
        headers.set("Last-Modified", last_modified)
        return HttpResponse(status=200, headers=headers,
                            body=candidate.read_bytes())


def _parseable_date(text: str) -> bool:
    try:
        return email.utils.parsedate_to_datetime(text) is not None
    except (TypeError, ValueError):
        return False


def _shed_response(exc: OverloadShedError) -> HttpResponse:
    response = _error(503, str(exc))
    response.headers.set("Retry-After",
                         retry_after_header(exc.retry_after))
    return response


def _error(status: int, detail: str) -> HttpResponse:
    from repro.http.status import reason_for
    reason = reason_for(status)
    return html_response(
        f"<HTML><HEAD><TITLE>{status} {reason}</TITLE></HEAD>\n"
        f"<BODY><H1>{status} {reason}</H1>"
        f"<P>{escape_html(detail)}</P></BODY></HTML>\n",
        status=status)
