"""Access logging in the NCSA Common Log Format.

Every 1996 server wrote one of these; analysis tooling of the era (and
of today) understands it:

``host ident authuser [date] "request line" status bytes``

:class:`AccessLog` collects entries in memory and/or appends them to a
file; the router calls :meth:`record` per request when a log is
attached.  The format function and parser are exposed separately so the
workload harness can post-process logs.
"""

from __future__ import annotations

import json
import re
import threading
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Optional

from repro.http.message import HttpRequest, HttpResponse

_CLF_RE = re.compile(
    r'^(?P<host>\S+) (?P<ident>\S+) (?P<user>\S+) '
    r'\[(?P<when>[^\]]+)\] "(?P<request>[^"]*)" '
    r'(?P<status>\d{3}) (?P<size>\d+|-)$')

#: strftime format of the CLF timestamp field.
CLF_TIME_FORMAT = "%d/%b/%Y:%H:%M:%S %z"


@dataclass(frozen=True)
class LogEntry:
    """One access-log line, parsed."""

    host: str
    request_line: str
    status: int
    size: int
    when: str
    ident: str = "-"
    user: str = "-"

    @property
    def method(self) -> str:
        return self.request_line.split(" ")[0] if self.request_line \
            else ""

    @property
    def path(self) -> str:
        parts = self.request_line.split(" ")
        return parts[1] if len(parts) > 1 else ""

    def format(self) -> str:
        size = str(self.size) if self.size >= 0 else "-"
        return (f'{self.host} {self.ident} {self.user} [{self.when}] '
                f'"{self.request_line}" {self.status} {size}')


def parse_line(line: str) -> Optional[LogEntry]:
    """Parse one CLF line; ``None`` when it is not CLF."""
    match = _CLF_RE.match(line.strip())
    if match is None:
        return None
    size_text = match.group("size")
    return LogEntry(
        host=match.group("host"),
        ident=match.group("ident"),
        user=match.group("user"),
        when=match.group("when"),
        request_line=match.group("request"),
        status=int(match.group("status")),
        size=-1 if size_text == "-" else int(size_text),
    )


class AccessLog:
    """Collects access-log entries; optionally appends to a file.

    Thread-safe (the server handles connections on threads).  Keeps the
    most recent ``max_entries`` in memory for tests and the stats
    helper regardless of file output.
    """

    def __init__(self, path: Optional[str | Path] = None, *,
                 max_entries: int = 10_000, metrics=None):
        self.path = Path(path) if path is not None else None
        self.max_entries = max_entries
        #: optional repro.obs.metrics.MetricsRegistry.  When attached,
        #: stats sources live on the registry (one source of truth for
        #: ``/statusz``, the ``#stats`` trailer and ``repro stats``) and
        #: :meth:`stats` merges the registry's counters in.
        self.metrics = metrics
        self._entries: list[LogEntry] = []
        self._lock = threading.Lock()
        self._stats_sources: dict[str, Callable[[], dict[str, int]]] = {}

    def attach_stats_source(self, name: str,
                            source: Callable[[], dict[str, int]]) -> None:
        """Merge an extra counter source into :meth:`stats`.

        ``source`` is called at stats time and its keys are prefixed with
        ``name_``.  The deployment wires the query-result cache here
        (``log.attach_stats_source("query_cache", cache.stats)``) so one
        call reports traffic *and* cache effectiveness.

        With a metrics registry attached this delegates to
        :meth:`repro.obs.metrics.MetricsRegistry.attach_stats_source`, so
        the same counters also surface on ``/metrics`` and ``/statusz``;
        the flattened key names are identical either way.
        """
        if self.metrics is not None:
            self.metrics.attach_stats_source(name, source)
        else:
            self._stats_sources[name] = source

    def record(self, request: HttpRequest, response: HttpResponse, *,
               remote_addr: str = "-",
               now: Optional[float] = None,
               size: Optional[int] = None) -> LogEntry:
        """Record one served request.

        ``size`` is the number of body bytes actually emitted.  It must
        be passed for streamed responses — ``response.body`` is empty
        while ``body_iter`` carries the page, so the historical
        ``len(response.body)`` default would log 0 bytes.  The router's
        streaming wrapper counts chunks as the transport pulls them and
        records the entry at stream close with the true total.
        """
        when = time.strftime(
            CLF_TIME_FORMAT,
            time.localtime(now if now is not None else time.time()))
        entry = LogEntry(
            host=remote_addr or "-",
            when=when,
            request_line=(f"{request.method} {request.target} "
                          f"{request.version}"),
            status=response.status,
            size=size if size is not None else len(response.body),
        )
        with self._lock:
            self._entries.append(entry)
            if len(self._entries) > self.max_entries:
                del self._entries[:-self.max_entries]
            if self.path is not None:
                with self.path.open("a", encoding="utf-8") as fh:
                    fh.write(entry.format() + "\n")
        return entry

    def append_stats_note(self) -> Optional[str]:
        """Append a ``#stats {json}`` trailer line to the log file.

        CLF has no place for server-side counters, so deployments write
        them as comment lines the CLF parser skips; ``repro stats``
        recognises and reports them.  Returns the line written, or
        ``None`` when the log has no file.
        """
        if self.path is None:
            return None
        stats = self.stats()  # outside the lock: stats() locks too
        line = "#stats " + json.dumps(stats, sort_keys=True)
        with self._lock:
            with self.path.open("a", encoding="utf-8") as fh:
                fh.write(line + "\n")
        return line

    # -- inspection ---------------------------------------------------------

    def entries(self) -> list[LogEntry]:
        with self._lock:
            return list(self._entries)

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def stats(self) -> dict[str, int]:
        """The webmaster's morning numbers: hits, errors, bytes.

        Attached sources (see :meth:`attach_stats_source`) contribute
        their counters under ``<name>_<counter>`` keys.  With a metrics
        registry attached, every registry metric (request latency
        histograms included, flattened to ``_count``/``_p50``/…) rides
        along too — the ``#stats`` trailer then carries the full
        instrument panel.
        """
        with self._lock:
            entries = list(self._entries)
        stats = {
            "hits": len(entries),
            "errors": sum(1 for e in entries if e.status >= 400),
            "bytes": sum(max(e.size, 0) for e in entries),
        }
        if self.metrics is not None:
            for key, value in self.metrics.flat().items():
                stats.setdefault(key, value)
        for name, source in self._stats_sources.items():
            for key, value in source().items():
                stats[f"{name}_{key}"] = value
        return stats
