"""HTTP/1.0 request and response messages, with wire codecs.

The Web of the paper speaks "the ubiquitous HTTP communication protocol"
(Section 1) in its 1.0 form: one request per connection, the connection
close delimiting the response body.  The codecs here implement exactly
that, shared by the socket server, the socket client, and — structurally —
the in-process transport.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Optional

from repro.errors import BadRequestError
from repro.http.headers import Headers
from repro.http.status import reason_for

SUPPORTED_METHODS = frozenset({"GET", "POST", "HEAD"})
HTTP_VERSION = "HTTP/1.0"


@dataclass
class HttpRequest:
    """One HTTP request."""

    method: str = "GET"
    target: str = "/"          # path[?query], as on the request line
    headers: Headers = field(default_factory=Headers)
    body: bytes = b""
    version: str = HTTP_VERSION

    @property
    def path(self) -> str:
        return self.target.partition("?")[0]

    @property
    def query(self) -> str:
        return self.target.partition("?")[2]

    def serialize(self) -> bytes:
        headers = Headers(self.headers.items())
        if self.body and "Content-Length" not in headers:
            headers.set("Content-Length", str(len(self.body)))
        head = (f"{self.method} {self.target} {self.version}\r\n"
                + headers.serialize() + "\r\n")
        return head.encode("latin-1") + self.body

    @classmethod
    def parse(cls, raw: bytes) -> "HttpRequest":
        """Parse a full request message (head and body already read)."""
        head, _, body = raw.partition(b"\r\n\r\n")
        if not _:
            head, _, body = raw.partition(b"\n\n")
        lines = head.decode("latin-1", "replace").splitlines()
        if not lines:
            raise BadRequestError("empty request")
        parts = lines[0].split()
        if len(parts) == 2:  # HTTP/0.9 simple request
            method, target = parts
            version = "HTTP/0.9"
        elif len(parts) == 3:
            method, target, version = parts
        else:
            raise BadRequestError(f"malformed request line: {lines[0]!r}")
        return cls(method=method.upper(), target=target,
                   headers=Headers.parse_lines(lines[1:]), body=body,
                   version=version)


@dataclass
class HttpResponse:
    """One HTTP response."""

    status: int = 200
    headers: Headers = field(default_factory=Headers)
    body: bytes = b""
    version: str = HTTP_VERSION
    #: Streaming body: when set, the body arrives as byte chunks and the
    #: response is emitted HTTP/1.0 style — no ``Content-Length``, the
    #: connection close delimiting the body (``Connection: close``).
    body_iter: Optional[Iterator[bytes]] = None

    @property
    def reason(self) -> str:
        return reason_for(self.status)

    @property
    def streaming(self) -> bool:
        return self.body_iter is not None

    def drain(self) -> None:
        """Materialise a streaming body into ``body`` (no-op otherwise)."""
        if self.body_iter is not None:
            chunks, self.body_iter = self.body_iter, None
            self.body = self.body + b"".join(chunks)

    @property
    def content_type(self) -> str:
        return self.headers.get("Content-Type", "text/html")

    @property
    def text(self) -> str:
        charset = "utf-8"
        for param in self.content_type.split(";")[1:]:
            key, _, value = param.strip().partition("=")
            if key.lower() == "charset" and value:
                charset = value.strip('"')
        return self.body.decode(charset, "replace")

    def serialize(self) -> bytes:
        self.drain()
        headers = Headers(self.headers.items())
        headers.set("Content-Length", str(len(self.body)))
        headers.setdefault("Content-Type", "text/html")
        head = (f"{self.version} {self.status} {self.reason}\r\n"
                + headers.serialize() + "\r\n")
        return head.encode("latin-1") + self.body

    def serialize_head(self) -> bytes:
        """The status line and headers for close-delimited streaming.

        No ``Content-Length`` — the body length is unknown until the
        stream is exhausted — so ``Connection: close`` marks the close
        of the connection as the end of the body (plain HTTP/1.0
        framing, Section 1's "ubiquitous" protocol).
        """
        headers = Headers(self.headers.items())
        headers.set("Connection", "close")
        headers.setdefault("Content-Type", "text/html")
        head = (f"{self.version} {self.status} {self.reason}\r\n"
                + headers.serialize() + "\r\n")
        return head.encode("latin-1")

    @classmethod
    def parse(cls, raw: bytes) -> "HttpResponse":
        head, sep, body = raw.partition(b"\r\n\r\n")
        if not sep:
            head, sep, body = raw.partition(b"\n\n")
        lines = head.decode("latin-1", "replace").splitlines()
        if not lines:
            raise BadRequestError("empty response")
        parts = lines[0].split(None, 2)
        if len(parts) < 2 or not parts[0].startswith("HTTP/"):
            raise BadRequestError(f"malformed status line: {lines[0]!r}")
        try:
            status = int(parts[1])
        except ValueError as exc:
            raise BadRequestError(
                f"malformed status code: {parts[1]!r}") from exc
        return cls(status=status, headers=Headers.parse_lines(lines[1:]),
                   body=body, version=parts[0])


def content_length_of(head: bytes) -> int:
    """The body length a request head declares — parsed strictly.

    Request smuggling lives in parser disagreement, so anything two
    implementations could read differently is a hard
    :class:`BadRequestError` (a 400 at the edge) instead of a silent
    guess: a repeated ``Content-Length`` header, a comma-joined value
    list (even when the copies agree), or a value that is not a plain
    non-negative decimal integer.  Absent means ``0``.  Both the
    threaded and the async edge call this, so they agree by
    construction.
    """
    values = []
    for line in head.split(b"\n")[1:]:  # [0] is the request line
        name, sep, value = line.decode("latin-1", "replace").partition(":")
        if sep and name.strip().lower() == "content-length":
            values.append(value.strip())
    if not values:
        return 0
    if len(values) > 1:
        raise BadRequestError(
            f"request carries {len(values)} Content-Length headers")
    value = values[0]
    if "," in value:
        raise BadRequestError(
            f"comma-joined Content-Length values: {value!r}")
    if not (value.isascii() and value.isdigit()):
        raise BadRequestError(f"malformed Content-Length: {value!r}")
    return int(value)


def html_response(html: str, *, status: int = 200,
                  charset: str = "utf-8") -> HttpResponse:
    """Build a text/html response from a page string."""
    headers = Headers()
    headers.set("Content-Type", f"text/html; charset={charset}")
    return HttpResponse(status=status, headers=headers,
                        body=html.encode(charset, "replace"))
