"""A threaded HTTP/1.0 socket server (the "Web server" of Figure 1).

One thread per connection, one request per connection, connection close
delimits the response — the NCSA-httpd model of 1996.  ``Connection:
Keep-Alive`` is honoured the way Netscape-era servers bolted it onto
HTTP/1.0: when the client asks and the response carries a
Content-Length (ours always do), the connection stays open for further
requests, up to ``keep_alive_max`` per connection.  Routing is
delegated to :class:`repro.http.router.Router`, so everything reachable
in-process is also reachable over a real socket (the live-server example
and the socket-transport integration tests rely on this).
"""

from __future__ import annotations

import socket
import threading

from repro.errors import BadRequestError
from repro.http.message import (
    HttpRequest,
    HttpResponse,
    content_length_of,
    html_response,
)
from repro.http.router import Router
from repro.obs.trace import new_trace_id
from repro.overload.retryafter import retry_after_header
from repro.resilience.deadline import Deadline

_MAX_HEAD = 64 * 1024
_MAX_BODY = 8 * 1024 * 1024
_RECV_CHUNK = 8192


class HttpServer:
    """Serve a router on a TCP port until :meth:`shutdown`.

    Usable as a context manager::

        with HttpServer(router) as server:
            url = f"http://127.0.0.1:{server.port}/"
    """

    def __init__(self, router: Router, *, host: str = "127.0.0.1",
                 port: int = 0, timeout: float = 10.0,
                 idle_timeout: float | None = None,
                 keep_alive_max: int = 100,
                 max_connections: int | None = None,
                 backlog: int = 128,
                 request_deadline: float | None = None):
        self.router = router
        self.timeout = timeout
        #: per-request wall-clock budget (seconds).  Minted as a
        #: :class:`Deadline` the moment a request is fully read and
        #: threaded through the router, admission queue and dispatcher
        #: — a request that outlives it answers 504.
        self.request_deadline = request_deadline
        #: concurrent-connection budget.  Each connection is a daemon
        #: thread, and threads are the scarce resource here: past the
        #: budget the server answers an immediate ``503`` and closes
        #: instead of spawning without bound.  ``None`` keeps the
        #: historical unbounded behaviour.
        self.max_connections = max_connections
        self._active = 0
        self._active_lock = threading.Lock()
        #: how long a kept-alive connection may sit idle (no bytes of a
        #: next request) before the server closes it; a stalled client
        #: must not pin a server thread forever.  Defaults to ``timeout``.
        self.idle_timeout = idle_timeout if idle_timeout is not None \
            else timeout
        #: maximum requests served on one kept-alive connection
        self.keep_alive_max = keep_alive_max
        #: pending-connection queue depth passed to ``listen``.  Deep
        #: enough by default that a burst of concurrent clients (the
        #: concurrency bench aims hundreds at a pre-forked gateway)
        #: queues instead of getting connection-refused; the kernel caps
        #: it at SOMAXCONN.
        self.backlog = backlog
        self._listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._listener.bind((host, port))
        self._listener.listen(backlog)
        self.host, self.port = self._listener.getsockname()
        router.server_name = self.host
        router.server_port = self.port
        self._shutdown = threading.Event()
        self._thread = threading.Thread(
            target=self._accept_loop, name="repro-httpd", daemon=True)

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> "HttpServer":
        self._thread.start()
        return self

    def shutdown(self) -> None:
        self._shutdown.set()
        try:
            # Wake the accept loop with a throwaway connection.
            with socket.create_connection((self.host, self.port),
                                          timeout=1.0):
                pass
        except OSError:
            pass
        self._thread.join(timeout=5.0)
        self._listener.close()

    def __enter__(self) -> "HttpServer":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.shutdown()

    @property
    def base_url(self) -> str:
        return f"http://{self.host}:{self.port}"

    # -- internals -----------------------------------------------------------

    def _accept_loop(self) -> None:
        while not self._shutdown.is_set():
            try:
                conn, addr = self._listener.accept()
            except OSError:
                return
            if self._shutdown.is_set():
                conn.close()
                return
            if not self._try_admit():
                # A fresh socket's send buffer swallows the small 503
                # without blocking, so shedding stays in the accept
                # loop — no thread is spawned for an over-budget peer.
                _shed_connection(conn, self._retry_hint(),
                                 trace_id=self._mint_trace_id())
                continue
            thread = threading.Thread(
                target=self._serve_connection, args=(conn, addr),
                daemon=True)
            thread.start()

    def _try_admit(self) -> bool:
        """Claim a connection slot; ``False`` means shed with a 503."""
        if self.max_connections is None:
            return True
        with self._active_lock:
            if self._active >= self.max_connections:
                return False
            self._active += 1
            return True

    def _release(self) -> None:
        if self.max_connections is None:
            return
        with self._active_lock:
            self._active -= 1

    def _mint_trace_id(self) -> str:
        """A correlation id for responses built before routing.

        Bad requests and shed connections never reach the router, so
        no span is opened — but the 4xx/503 still carries an
        ``X-Trace-Id`` the client can quote against the access log.
        """
        return new_trace_id() if self.router.tracer.enabled else ""

    def _retry_hint(self) -> float | None:
        """An honest Retry-After for shed connections.

        When the router carries an overload controller its queue-depth /
        service-rate estimate is the best signal available; otherwise
        fall back to the historical flat ``1``.
        """
        controller = getattr(self.router, "overload", None)
        if controller is not None:
            return controller.retry_after_hint()
        return None

    def _serve_connection(self, conn: socket.socket,
                          addr: tuple[str, int]) -> None:
        conn.settimeout(self.timeout)
        buffer = b""
        served = 0
        try:
            while served < self.keep_alive_max:
                try:
                    raw, buffer = self._read_request(conn, buffer)
                except BadRequestError as exc:
                    # An ambiguous request head (e.g. conflicting
                    # Content-Length headers) poisons any pipelined
                    # bytes behind it too: answer 400 and drop the
                    # connection rather than guess at a body boundary.
                    response = html_response(
                        f"<H1>400 Bad Request</H1><P>{exc}</P>",
                        status=400)
                    response.headers.set("Connection", "close")
                    error_trace = self._mint_trace_id()
                    if error_trace:
                        response.headers.set("X-Trace-Id", error_trace)
                    conn.sendall(response.serialize())
                    return
                if raw is None:
                    return
                keep_alive = False
                try:
                    request = HttpRequest.parse(raw)
                    keep_alive = _wants_keep_alive(request)
                    # The trace id is minted where the request enters
                    # the system; the router threads it everywhere else.
                    trace_id = new_trace_id() \
                        if self.router.tracer.enabled else ""
                    # The deadline starts the moment the request is
                    # fully read: queue time in the admission queue and
                    # pool-checkout waits all burn the same budget.
                    deadline = Deadline.after(self.request_deadline) \
                        if self.request_deadline else None
                    response = self.router.handle(request,
                                                  remote_addr=addr[0],
                                                  trace_id=trace_id,
                                                  deadline=deadline)
                except BadRequestError as exc:
                    response = html_response(
                        f"<H1>400 Bad Request</H1><P>{exc}</P>",
                        status=400)
                    error_trace = self._mint_trace_id()
                    if error_trace:
                        response.headers.set("X-Trace-Id", error_trace)
                served += 1
                if response.streaming:
                    # Close-delimited body: no Content-Length exists
                    # until the stream ends, so this response always
                    # terminates the connection (plain HTTP/1.0
                    # framing; Keep-Alive needs a length to survive).
                    self._send_streaming(conn, response)
                    return
                if keep_alive and served < self.keep_alive_max:
                    response.headers.set("Connection", "Keep-Alive")
                else:
                    response.headers.set("Connection", "close")
                    keep_alive = False
                conn.sendall(response.serialize())
                if not keep_alive:
                    return
        except OSError:
            pass
        finally:
            try:
                conn.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            conn.close()
            self._release()

    def _send_streaming(self, conn: socket.socket,
                        response: HttpResponse) -> None:
        """Emit head, any buffered prefix, then the chunk stream.

        The body iterator is closed whatever happens, so abandoned
        generators (client gone mid-page) still run their ``finally``
        blocks — the streaming SQL session's transaction bracket
        depends on that.
        """
        body_iter = response.body_iter
        assert body_iter is not None
        try:
            conn.sendall(response.serialize_head())
            if response.body:
                conn.sendall(response.body)
            for chunk in body_iter:
                if chunk:
                    conn.sendall(chunk)
        finally:
            close = getattr(body_iter, "close", None)
            if close is not None:
                close()

    def _read_request(self, conn: socket.socket,
                      buffer: bytes) -> tuple[bytes | None, bytes]:
        """Read one full request: head to the blank line, then the body
        according to Content-Length.

        ``buffer`` carries bytes already read beyond the previous
        request (keep-alive pipelining); returns ``(request_bytes,
        remaining_buffer)``, with ``None`` when the peer closed, stalled
        past a timeout, or the limits were exceeded.

        While *no* bytes of the next request have arrived the socket
        runs under ``idle_timeout``; once the request starts flowing it
        switches to the stricter per-read ``timeout``.  Either timeout
        closes the connection cleanly (the request was not yet begun or
        is abandoned — nothing to answer).
        """
        data = buffer
        separator = b"\r\n\r\n"
        while separator not in data and b"\n\n" not in data:
            if len(data) > _MAX_HEAD:
                raise BadRequestError(
                    f"request head exceeds {_MAX_HEAD} bytes")
            conn.settimeout(self.idle_timeout if not data
                            else self.timeout)
            try:
                chunk = conn.recv(_RECV_CHUNK)
            except TimeoutError:
                return None, b""
            if not chunk:
                return None, b""
            data += chunk
        conn.settimeout(self.timeout)
        if separator not in data:
            separator = b"\n\n"
        head, _, rest = data.partition(separator)
        if len(head) > _MAX_HEAD:
            # The terminator and the overflow can arrive in one read;
            # the in-loop check alone would admit such a head.
            raise BadRequestError(
                f"request head exceeds {_MAX_HEAD} bytes")
        # Strict parse: duplicate / comma-joined / malformed
        # Content-Length raises BadRequestError → 400 upstream.
        content_length = content_length_of(head)
        if content_length > _MAX_BODY:
            return None, b""
        while len(rest) < content_length:
            chunk = conn.recv(_RECV_CHUNK)
            if not chunk:
                break
            rest += chunk
        body, remaining = rest[:content_length], rest[content_length:]
        return head + separator + body, remaining


def _wants_keep_alive(request: HttpRequest) -> bool:
    tokens = request.headers.get("Connection", "").lower()
    return "keep-alive" in tokens


def _shed_connection(conn: socket.socket,
                     retry_hint: float | None = None, *,
                     trace_id: str = "") -> None:
    """Answer an over-budget connection with an immediate 503."""
    response = html_response(
        "<H1>503 Service Unavailable</H1>"
        "<P>connection budget exhausted; retry shortly</P>", status=503)
    response.headers.set("Connection", "close")
    response.headers.set("Retry-After", retry_after_header(retry_hint))
    if trace_id:
        response.headers.set("X-Trace-Id", trace_id)
    try:
        conn.settimeout(1.0)
        conn.sendall(response.serialize())
    except OSError:
        pass
    finally:
        try:
            conn.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        conn.close()
