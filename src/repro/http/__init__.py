"""HTTP substrate: URLs, messages, router, socket server/client,
in-process transport.  See Figure 1 of the paper and DESIGN.md."""

from repro.http.accesslog import AccessLog, LogEntry, parse_line
from repro.http.client import HttpClient
from repro.http.headers import Headers
from repro.http.inprocess import InProcessTransport, Transport
from repro.http.message import HttpRequest, HttpResponse, html_response
from repro.http.persistent import PersistentHttpClient
from repro.http.router import CGI_PREFIX, Router
from repro.http.server import HttpServer
from repro.http.status import reason_for
from repro.http.urls import Url, join, normalize_path

__all__ = [
    "AccessLog",
    "CGI_PREFIX",
    "LogEntry",
    "parse_line",
    "Headers",
    "HttpClient",
    "HttpRequest",
    "HttpResponse",
    "HttpServer",
    "InProcessTransport",
    "PersistentHttpClient",
    "Router",
    "Transport",
    "Url",
    "html_response",
    "join",
    "normalize_path",
    "reason_for",
]
