"""Uniform resource locators (Section 1: "a uniform resource locator
(URL)"), parsed and built the way 1996 software did.

Only ``http`` URLs matter to the reproduction; the parser understands
``http://host[:port]/path[?query]`` absolute URLs, server-relative paths
(``/cgi-bin/...``) and relative references, with :func:`join` implementing
the subset of RFC 1808 relative resolution that form ACTIONs and
hyperlinks in period pages use.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, replace

from repro.errors import UrlSyntaxError

_ABSOLUTE_RE = re.compile(
    r"^(?P<scheme>[A-Za-z][A-Za-z0-9+.\-]*)://"
    r"(?P<host>[^/:?#\s]+)"
    r"(?::(?P<port>\d+))?"
    r"(?P<rest>[^#\s]*)"
    r"(?:#(?P<fragment>\S*))?$"
)


@dataclass(frozen=True)
class Url:
    """A parsed URL.  ``path`` always begins with ``/`` (or is empty for
    opaque references); ``query`` excludes the ``?``."""

    scheme: str = "http"
    host: str = "localhost"
    port: int = 80
    path: str = "/"
    query: str = ""
    fragment: str = ""

    # -- construction ----------------------------------------------------

    @classmethod
    def parse(cls, text: str) -> "Url":
        """Parse an absolute http URL."""
        match = _ABSOLUTE_RE.match(text.strip())
        if match is None:
            raise UrlSyntaxError(f"not an absolute URL: {text!r}")
        scheme = match.group("scheme").lower()
        port_text = match.group("port")
        port = int(port_text) if port_text else _default_port(scheme)
        rest = match.group("rest") or "/"
        path, _, query = rest.partition("?")
        return cls(scheme=scheme, host=match.group("host").lower(),
                   port=port, path=path or "/", query=query,
                   fragment=match.group("fragment") or "")

    # -- rendering --------------------------------------------------------

    @property
    def request_target(self) -> str:
        """The path?query string sent on the HTTP request line."""
        target = self.path or "/"
        if self.query:
            target += "?" + self.query
        return target

    @property
    def netloc(self) -> str:
        if self.port == _default_port(self.scheme):
            return self.host
        return f"{self.host}:{self.port}"

    def __str__(self) -> str:
        text = f"{self.scheme}://{self.netloc}{self.path or '/'}"
        if self.query:
            text += "?" + self.query
        if self.fragment:
            text += "#" + self.fragment
        return text

    # -- manipulation -----------------------------------------------------

    def with_query(self, query: str) -> "Url":
        return replace(self, query=query)

    def with_path(self, path: str) -> "Url":
        if not path.startswith("/"):
            path = "/" + path
        return replace(self, path=path)


def _default_port(scheme: str) -> int:
    return {"http": 80, "https": 443}.get(scheme, 80)


def join(base: Url, reference: str) -> Url:
    """Resolve ``reference`` against ``base``.

    Handles the forms a 1996 browser met in href/ACTION attributes:
    absolute URLs, network-path (``//host/...``), absolute paths,
    relative paths (with ``.``/``..`` normalisation) and bare query
    (``?a=b``) or fragment references.
    """
    reference = reference.strip()
    if not reference:
        return base
    if _ABSOLUTE_RE.match(reference):
        return Url.parse(reference)
    if reference.startswith("//"):
        return Url.parse(f"{base.scheme}:{reference}")
    if reference.startswith("#"):
        return replace(base, fragment=reference[1:])
    if reference.startswith("?"):
        return replace(base, query=reference[1:], fragment="")
    path, _, tail = reference.partition("?")
    query, _, fragment = tail.partition("#")
    if path.startswith("/"):
        resolved = path
    else:
        directory = base.path.rsplit("/", 1)[0]
        resolved = f"{directory}/{path}"
    return replace(base, path=normalize_path(resolved),
                   query=query, fragment=fragment)


def normalize_path(path: str) -> str:
    """Collapse ``.`` and ``..`` segments; the result stays rooted.

    ``..`` never climbs above ``/`` — the classic path-traversal guard a
    static-file server needs.
    """
    segments: list[str] = []
    for segment in path.split("/"):
        if segment in ("", "."):
            continue
        if segment == "..":
            if segments:
                segments.pop()
            continue
        segments.append(segment)
    normalized = "/" + "/".join(segments)
    if path.endswith("/") and normalized != "/":
        normalized += "/"
    return normalized
