"""Exception hierarchy for the repro package.

Every error raised by this library derives from :class:`ReproError` so that
applications embedding the gateway can catch a single base class.  The
sub-hierarchy mirrors the layers of the system described in DESIGN.md:

* macro language errors (lexing, parsing, definition semantics),
* substitution errors (the paper's cross-language variable mechanism),
* execution errors (running a macro in input/report mode),
* SQL gateway errors (with DB2-flavoured SQLSTATE/SQLCODE attributes),
* CGI and HTTP protocol errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the repro package."""


# ---------------------------------------------------------------------------
# Macro language
# ---------------------------------------------------------------------------


class MacroError(ReproError):
    """Base class for macro-language errors.

    Carries an optional source location so that application developers get
    the file/line of the offending macro text, as the DB2 WWW Connection
    run-time engine did.
    """

    def __init__(self, message: str, *, line: int | None = None,
                 source: str | None = None):
        self.line = line
        self.source = source
        location = ""
        if source is not None:
            location += f"{source}:"
        if line is not None:
            location += f"line {line}: "
        elif location:
            location += " "
        super().__init__(location + message)


class MacroSyntaxError(MacroError):
    """The macro text violates the grammar of Section 3 of the paper."""


class UnterminatedBlockError(MacroSyntaxError):
    """A ``%KEYWORD{`` block was never closed with ``%}``."""


class DuplicateSectionError(MacroSyntaxError):
    """A macro contains two sections that must be unique.

    The paper allows one ``%HTML_INPUT`` and one ``%HTML_REPORT`` section
    per macro, and requires named ``%SQL`` sections to carry unique names.
    """


class MacroValidationError(MacroError):
    """A structurally valid macro violates a semantic constraint.

    Examples: more than one unnamed ``%EXEC_SQL`` directive in the HTML
    report section, or an ``%EXEC_SQL(name)`` that references a SQL section
    that does not exist anywhere in the macro.
    """


# ---------------------------------------------------------------------------
# Variable substitution
# ---------------------------------------------------------------------------


class SubstitutionError(ReproError):
    """Base class for errors during cross-language variable substitution."""


class CircularReferenceError(SubstitutionError):
    """A chain of variable references loops back on itself.

    Section 3.1.1: "Circular references among variables are not allowed and
    result in an error."  The ``chain`` attribute records the cycle in
    evaluation order, ending with the repeated name.
    """

    def __init__(self, chain: list[str]):
        self.chain = list(chain)
        super().__init__(
            "circular variable reference: " + " -> ".join(self.chain))


class ExecVariableError(SubstitutionError):
    """An executable (``%EXEC``) variable could not be run at all.

    Note that a command that runs and *fails* is not an error — the paper
    stores the failure code in the variable itself.  This exception is for
    commands that cannot be dispatched (unknown name with subprocess
    execution disabled, for example).
    """


# ---------------------------------------------------------------------------
# Macro execution
# ---------------------------------------------------------------------------


class MacroExecutionError(ReproError):
    """A macro failed while being processed in input or report mode."""


class MissingSectionError(MacroExecutionError):
    """The section required by the requested mode is absent.

    Input mode requires an ``%HTML_INPUT`` section and report mode requires
    an ``%HTML_REPORT`` section (Sections 4.1 and 4.2 of the paper).
    """


class UnknownSqlSectionError(MacroExecutionError):
    """``%EXEC_SQL(name)`` resolved to a name with no matching SQL section."""


class TransactionAborted(MacroExecutionError):
    """Single-transaction mode rolled back because a SQL statement failed.

    Section 5: "a rollback will occur if any SQL statement fails".
    """

    def __init__(self, message: str, *, partial_output: str = ""):
        self.partial_output = partial_output
        super().__init__(message)


# ---------------------------------------------------------------------------
# SQL gateway
# ---------------------------------------------------------------------------


class SQLError(ReproError):
    """A database operation failed.

    Attributes mimic what the DB2 call-level interface reported to
    DB2 WWW Connection so that ``%SQL_MESSAGE`` blocks can match on them:

    ``sqlcode``
        Negative integer for errors, positive for warnings (DB2 convention).
    ``sqlstate``
        Five-character SQLSTATE string.
    """

    def __init__(self, message: str, *, sqlcode: int = -1,
                 sqlstate: str = "58004"):
        self.sqlcode = sqlcode
        self.sqlstate = sqlstate
        super().__init__(message)

    @property
    def is_warning(self) -> bool:
        return self.sqlcode > 0


class SQLSyntaxError(SQLError):
    """The SQL string assembled by substitution failed to prepare."""

    def __init__(self, message: str):
        super().__init__(message, sqlcode=-104, sqlstate="42601")


class SQLObjectError(SQLError):
    """An undefined table, view or column name (SQLSTATE 42704/42703)."""

    def __init__(self, message: str, *, sqlstate: str = "42704"):
        super().__init__(message, sqlcode=-204, sqlstate=sqlstate)


class ReadOnlySqlError(SQLError):
    """A write statement reached a read-only database or tenant.

    DB2 reports authorization failures as SQL0551N with SQLSTATE 42501
    ("does not have the privilege to perform operation").  Raised at the
    gateway *before* a connection is acquired, so a read-only tenant
    cannot tie up pool slots with statements that will never run; the
    HTTP layer maps it to 403.
    """

    def __init__(self, message: str = "write rejected: target is "
                 "read-only"):
        super().__init__(message, sqlcode=-551, sqlstate="42501")


class SQLConstraintError(SQLError):
    """A constraint violation (duplicate key, NOT NULL, ...)."""

    def __init__(self, message: str):
        super().__init__(message, sqlcode=-803, sqlstate="23505")


class SQLDataError(SQLError):
    """Invalid data for the operation (conversion failure, overflow)."""

    def __init__(self, message: str):
        super().__init__(message, sqlcode=-420, sqlstate="22018")


class ConnectionClosedError(SQLError):
    """Operation attempted on a closed connection or cursor."""

    def __init__(self, message: str = "connection is closed"):
        super().__init__(message, sqlcode=-99999, sqlstate="08003")


# -- transient failures (the retry/breaker layer classifies on these) -------


class SQLTransientError(SQLError):
    """A failure that may succeed if the statement is retried.

    DB2 grouped these under SQLSTATE classes 08 (connection), 40001
    (deadlock/timeout rollback) and 57xxx (resource unavailable); the
    resilience layer (:mod:`repro.resilience`) retries idempotent reads
    that fail with one of these and feeds them to the circuit breaker.
    """


class SQLConnectError(SQLTransientError):
    """The database could not be reached (SQLSTATE class 08).

    DB2's DRDA client reported unreachable servers as SQL30081N.
    """

    def __init__(self, message: str = "could not connect to database", *,
                 sqlstate: str = "08001"):
        super().__init__(message, sqlcode=-30081, sqlstate=sqlstate)


class SQLDeadlockError(SQLTransientError):
    """Deadlock or lock timeout rolled the statement back (SQL0911N)."""

    def __init__(self, message: str = "deadlock or timeout, "
                 "statement rolled back"):
        super().__init__(message, sqlcode=-911, sqlstate="40001")


class SQLTimeoutError(SQLTransientError):
    """The statement timed out without rollback (SQL0913N, 57033)."""

    def __init__(self, message: str = "statement timed out"):
        super().__init__(message, sqlcode=-913, sqlstate="57033")


class PoolExhaustedError(SQLTransientError):
    """No connection became available within the pool timeout.

    ``retry_after`` is the pool's estimate (seconds) of when a slot is
    likely to free up; the HTTP layer surfaces it on the 503 response
    through the shared helper in :mod:`repro.overload.retryafter`.
    """

    def __init__(self, message: str = "connection pool exhausted", *,
                 retry_after: float = 1.0):
        self.retry_after = retry_after
        super().__init__(message, sqlcode=-1040, sqlstate="57030")


class CircuitOpenError(SQLTransientError):
    """The circuit breaker for a database is open: fail fast, retry later.

    ``retry_after`` is the breaker's estimate of when a probe will be
    allowed (seconds); the HTTP layer surfaces it as a ``Retry-After``
    header on a 503 response.
    """

    def __init__(self, message: str = "database circuit breaker is open",
                 *, retry_after: float = 1.0):
        self.retry_after = retry_after
        super().__init__(message, sqlcode=-30081, sqlstate="08004")


class DeadlineExceededError(SQLError):
    """The request's deadline budget ran out (SQL0952N: cancelled).

    Deliberately *not* transient: once the budget is spent there is no
    time left to retry in, so the resilience layer surfaces it terminally.
    """

    def __init__(self, message: str = "request deadline exceeded"):
        super().__init__(message, sqlcode=-952, sqlstate="57014")


#: SQLSTATE values (beyond the class-08 prefix) treated as retryable.
TRANSIENT_SQLSTATES = frozenset({"40001", "57030", "57033"})


def is_transient(error: BaseException) -> bool:
    """True when ``error`` is a retryable (transient) database failure.

    Classifies both the library's own :class:`SQLTransientError` subtree
    and foreign :class:`SQLError` instances by SQLSTATE: class 08
    (connection) and the deadlock/resource states of
    :data:`TRANSIENT_SQLSTATES`.  Deadline exhaustion is never transient.
    """
    if isinstance(error, DeadlineExceededError):
        return False
    if isinstance(error, SQLTransientError):
        return True
    if isinstance(error, ConnectionClosedError):
        # A connection that died under us is replaceable: the pool evicts
        # it and a retry gets a fresh one.
        return True
    if isinstance(error, SQLError):
        state = error.sqlstate or ""
        return state.startswith("08") or state in TRANSIENT_SQLSTATES
    return False


# ---------------------------------------------------------------------------
# CGI / HTTP
# ---------------------------------------------------------------------------


class OverloadShedError(ReproError):
    """Admission control refused this request: the server is overloaded.

    Deliberate and cheap — the request never touched the gateway.  Maps
    to 503 with the shared ``Retry-After`` semantics; ``retry_after``
    is the controller's honest drain estimate (seconds) and
    ``cost_class`` records which class was shed (heavy-report and
    unclassified traffic go first).
    """

    def __init__(self, message: str = "server overloaded, request shed",
                 *, retry_after: float = 1.0, cost_class: str = ""):
        self.retry_after = retry_after
        self.cost_class = cost_class
        super().__init__(message)


class GatewayError(ReproError):
    """Base class for CGI gateway failures."""


class UnknownCgiProgramError(GatewayError):
    """The URL named a CGI program that is not registered with the server."""


class CgiProtocolError(GatewayError):
    """A CGI program produced output violating the CGI/1.1 contract."""


class HttpError(ReproError):
    """Base class for HTTP transport errors."""

    status = 500


class BadRequestError(HttpError):
    status = 400


class NotFoundError(HttpError):
    status = 404


class MethodNotAllowedError(HttpError):
    status = 405


class UrlSyntaxError(HttpError):
    """A URL could not be parsed."""

    status = 400
