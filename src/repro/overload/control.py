"""The adaptive admission controller: bounded queue, WFQ, AIMD shedder.

Three mechanisms, one lock:

* **Bounded admission queue with weighted fair queueing.**  At most
  ``max_concurrent`` requests execute; the next ``queue_limit`` wait,
  ordered by virtual finish time so one chatty client key cannot
  monopolise the queue and heavy requests pay a larger virtual cost
  than cached reads.  Past the limit the incoming request is shed —
  unless a cheaper-priority waiter can be evicted in its place (a
  cached read arriving at a full queue displaces a queued heavy
  report, not the other way round).
* **AIMD on the admit rate, driven by the live interactive p99.**
  Every ``tick_interval`` the controller diffs the interactive-class
  latency histogram (the same :mod:`repro.obs.metrics` histogram the
  scrape endpoints render) to get the p99 *of the last window*.  SLO
  breached → multiplicative decrease, shedding heavy and unclassified
  traffic first and interactive traffic only once the deferrable rate
  has hit its floor; healthy window → additive recovery in the reverse
  order.  Cached reads are never probabilistically shed — refusing
  microseconds of work saves nothing.
* **Queue-time accounting against the deadline budget.**  A waiter
  whose deadline expires in the queue is shed for ~0 cost (504, no
  gateway work); the wait itself is bounded by the remaining budget.

Shed requests raise :class:`~repro.errors.OverloadShedError` carrying
an honest ``Retry-After`` computed from queue depth and the observed
service rate (:mod:`repro.overload.retryafter`).  Every decision is
counted under ``overload_*`` metric names, so ``/metrics`` and
``/statusz`` show the controller working.
"""

from __future__ import annotations

import random
import threading
import time
from typing import Callable, Optional

from repro.errors import DeadlineExceededError, OverloadShedError
from repro.obs.metrics import MetricsRegistry, quantile_from_counts
from repro.overload.classify import (
    CACHED,
    COST_CLASSES,
    HEAVY,
    INTERACTIVE,
    UNCLASSIFIED,
    RequestClassifier,
)
from repro.overload.retryafter import queue_retry_hint

#: WFQ virtual cost per class: a heavy report "occupies" eight times the
#: virtual time of a cached read, so fairness is in estimated work, not
#: request count.
_WEIGHTS = {CACHED: 0.5, INTERACTIVE: 1.0, UNCLASSIFIED: 2.0, HEAVY: 4.0}

#: Eviction priority (higher keeps its queue slot longer).
_PRIORITY = {HEAVY: 0, UNCLASSIFIED: 1, INTERACTIVE: 2, CACHED: 3}

#: AIMD tiers: heavy and unclassified share one admit rate that drops
#: first and recovers last.
_DEFERRABLE = "deferrable"
_INTERACTIVE = "interactive"
_TIER = {HEAVY: _DEFERRABLE, UNCLASSIFIED: _DEFERRABLE,
         INTERACTIVE: _INTERACTIVE}

_DEFER_FLOOR = 0.05
_INTERACTIVE_FLOOR = 0.20
_DECREASE = 0.5          # multiplicative, on SLO breach
_INCREASE = 0.10         # additive, per healthy tick
_HEALTHY_FRACTION = 0.8  # p99 below slo * this counts as headroom
_MIN_WINDOW_SAMPLES = 8


class AdmissionTicket:
    """Proof of admission; must be passed back to :meth:`release`."""

    __slots__ = ("cost_class", "key", "client_key", "queued_ms",
                 "admitted_at", "released")

    def __init__(self, cost_class: str, key: str, client_key: str,
                 queued_ms: float, admitted_at: float):
        self.cost_class = cost_class
        self.key = key
        self.client_key = client_key
        self.queued_ms = queued_ms
        self.admitted_at = admitted_at
        self.released = False


class _Waiter:
    __slots__ = ("cost_class", "key", "client_key", "deadline", "vft",
                 "enqueued_at", "event", "state")

    def __init__(self, cost_class, key, client_key, deadline, vft,
                 enqueued_at):
        self.cost_class = cost_class
        self.key = key
        self.client_key = client_key
        self.deadline = deadline
        self.vft = vft
        self.enqueued_at = enqueued_at
        self.event = threading.Event()
        self.state = "queued"  # queued | admitted | shed | expired


class OverloadController:
    """Admission control for one serving process.

    Thread-safe; designed to sit in front of
    :meth:`repro.http.router.Router.handle` but usable by anything that
    brackets work with :meth:`admit` / :meth:`release`.  ``deadline``
    arguments are duck-typed (``expired`` property and ``remaining()``
    method — :class:`repro.resilience.deadline.Deadline` qualifies)
    so this package stays import-cycle-free.
    """

    def __init__(self, *, max_concurrent: int = 8, queue_limit: int = 64,
                 interactive_slo_ms: float = 100.0,
                 classifier: Optional[RequestClassifier] = None,
                 metrics: Optional[MetricsRegistry] = None,
                 tick_interval: float = 0.25,
                 max_queue_wait: float = 2.0,
                 seed: int = 0,
                 clock: Callable[[], float] = time.monotonic):
        if max_concurrent < 1:
            raise ValueError("max_concurrent must be at least 1")
        if queue_limit < 0:
            raise ValueError("queue_limit must be >= 0")
        self.max_concurrent = max_concurrent
        self.queue_limit = queue_limit
        self.interactive_slo_ms = interactive_slo_ms
        self.classifier = classifier if classifier is not None \
            else RequestClassifier()
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.tick_interval = tick_interval
        self.max_queue_wait = max_queue_wait
        self._clock = clock
        self._rng = random.Random(seed)
        self._lock = threading.Lock()
        self._inflight = 0
        self._queue: list[_Waiter] = []
        self._virtual_time = 0.0
        self._client_vft: dict[str, float] = {}
        self._rates = {_DEFERRABLE: 1.0, _INTERACTIVE: 1.0}
        self._last_tick = clock()
        self._completions_window = 0
        self._service_rate = 0.0  # EWMA completions/second
        self._bind_metrics()
        self._latency_window = self._m_latency[INTERACTIVE].bucket_counts()

    # -- admission ---------------------------------------------------------

    def admit(self, request=None, *, cost_class: Optional[str] = None,
              client_key: str = "", deadline=None) -> AdmissionTicket:
        """Admit one request or raise.

        Raises :class:`OverloadShedError` (→ 503 + Retry-After) when the
        request is shed and :class:`DeadlineExceededError` (→ 504) when
        its deadline expired before any work was done.  The returned
        ticket must be released exactly once.
        """
        if cost_class is None:
            key, cost_class = self.classifier.classify(request)
        else:
            key = self.classifier.key_for(request) if request is not None \
                else ""
            if cost_class not in COST_CLASSES:
                raise ValueError(f"unknown cost class {cost_class!r}")
        if deadline is not None and deadline.expired:
            self._m_expired.inc()
            raise DeadlineExceededError(
                "request deadline expired before admission")
        waiter = None
        with self._lock:
            self._tick_locked()
            rate = self._rates.get(_TIER.get(cost_class, ""), 1.0)
            if rate < 1.0 and self._rng.random() >= rate:
                raise self._shed_locked(cost_class, "rate")
            if self._inflight < self.max_concurrent and not self._queue:
                self._inflight += 1
                self._m_inflight.set(self._inflight)
                self._m_admitted.inc()
                return AdmissionTicket(cost_class, key, client_key,
                                       0.0, self._clock())
            waiter = self._enqueue_locked(cost_class, key, client_key,
                                          deadline)
        # -- wait outside the lock ----------------------------------------
        timeout = self.max_queue_wait
        if deadline is not None:
            timeout = min(timeout, deadline.remaining())
        waiter.event.wait(timeout)
        with self._lock:
            if waiter.state == "admitted":
                queued_ms = (self._clock() - waiter.enqueued_at) * 1000.0
                self._m_queue_wait.observe(queued_ms)
                return AdmissionTicket(cost_class, key, client_key,
                                       queued_ms, self._clock())
            if waiter.state == "queued":
                # Timed out waiting; leave the queue.
                try:
                    self._queue.remove(waiter)
                except ValueError:  # pragma: no cover - admit raced
                    pass
                self._m_queue_depth.set(len(self._queue))
                if deadline is not None and deadline.expired:
                    waiter.state = "expired"
                else:
                    waiter.state = "shed"
            if waiter.state == "expired":
                self._m_expired.inc()
                raise DeadlineExceededError(
                    "request deadline expired while queued for admission")
            raise self._shed_locked(cost_class, "queue_timeout")

    def release(self, ticket: AdmissionTicket, *,
                status: int = 200) -> None:
        """Return an admitted request's slot; records its service time."""
        if ticket.released:
            return
        ticket.released = True
        service_ms = (self._clock() - ticket.admitted_at) * 1000.0
        self._m_latency[ticket.cost_class].observe(service_ms)
        self._m_by_class.inc(ticket.cost_class)
        if ticket.key and status < 500:
            # 5xx latencies say nothing about the request's real cost.
            self.classifier.observe(ticket.key, service_ms)
        with self._lock:
            self._inflight -= 1
            self._completions_window += 1
            self._promote_locked()
            self._m_inflight.set(self._inflight)
            self._tick_locked()

    def retry_after_hint(self) -> Optional[float]:
        """Seconds until a shed client's retry is likely admitted."""
        with self._lock:
            return queue_retry_hint(len(self._queue), self._service_rate)

    # -- internals (all called under self._lock) ---------------------------

    def _enqueue_locked(self, cost_class, key, client_key,
                        deadline) -> _Waiter:
        if len(self._queue) >= self.queue_limit:
            victim = self._evict_candidate_locked(cost_class)
            if victim is None:
                raise self._shed_locked(cost_class, "queue_full")
            self._queue.remove(victim)
            victim.state = "shed"
            victim.event.set()
            self._m_evicted.inc()
            self._count_shed(victim.cost_class, "evicted")
        now = self._clock()
        start = max(self._virtual_time,
                    self._client_vft.get(client_key, 0.0))
        vft = start + _WEIGHTS.get(cost_class, 1.0)
        self._client_vft[client_key] = vft
        waiter = _Waiter(cost_class, key, client_key, deadline, vft, now)
        self._queue.append(waiter)
        self._m_queued.inc()
        self._m_queue_depth.set(len(self._queue))
        return waiter

    def _evict_candidate_locked(self,
                                incoming_class: str) -> Optional[_Waiter]:
        """The queued waiter a higher-priority arrival may displace."""
        incoming = _PRIORITY.get(incoming_class, 0)
        victim = None
        for waiter in self._queue:
            if _PRIORITY.get(waiter.cost_class, 0) >= incoming:
                continue
            if victim is None or waiter.vft > victim.vft:
                victim = waiter  # latest virtual finisher goes first
        return victim

    def _promote_locked(self) -> None:
        """Hand freed slots to the earliest virtual finishers."""
        while self._queue and self._inflight < self.max_concurrent:
            best = min(self._queue, key=lambda w: w.vft)
            self._queue.remove(best)
            if best.deadline is not None and best.deadline.expired:
                # Expired while queued: shed for ~0 cost — the slot
                # goes to the next waiter, no gateway work is wasted.
                best.state = "expired"
                best.event.set()
                continue
            self._virtual_time = max(self._virtual_time, best.vft)
            best.state = "admitted"
            self._inflight += 1
            self._m_admitted.inc()
            best.event.set()
        self._m_queue_depth.set(len(self._queue))
        if not self._queue and self._client_vft:
            # Idle queue: fairness history is meaningless and the map
            # would otherwise grow one entry per client key ever seen.
            self._client_vft.clear()

    def _shed_locked(self, cost_class: str,
                     reason: str) -> OverloadShedError:
        self._count_shed(cost_class, reason)
        hint = queue_retry_hint(len(self._queue), self._service_rate)
        return OverloadShedError(
            f"overloaded: {cost_class} request shed ({reason})",
            retry_after=hint if hint is not None else 1.0,
            cost_class=cost_class)

    def _count_shed(self, cost_class: str, reason: str) -> None:
        self._m_shed.inc()
        self._m_shed_class[cost_class].inc()
        self.metrics.counter(f"overload_shed_{reason}_total").inc()

    def _tick_locked(self) -> None:
        now = self._clock()
        interval = now - self._last_tick
        if interval < self.tick_interval:
            return
        self._last_tick = now
        # Service rate: EWMA of completions per second over the window.
        rate = self._completions_window / interval
        self._completions_window = 0
        self._service_rate = rate if self._service_rate == 0.0 \
            else 0.7 * self._service_rate + 0.3 * rate
        self._m_service_rate.set(round(self._service_rate, 3))
        # Windowed interactive p99 off the cumulative histogram.
        counts = self._m_latency[INTERACTIVE].bucket_counts()
        window = [a - b for a, b in zip(counts, self._latency_window)]
        self._latency_window = counts
        samples = sum(window)
        p99 = quantile_from_counts(window, 0.99)
        self._m_window_p99.set(round(p99, 3))
        if samples >= _MIN_WINDOW_SAMPLES and \
                p99 > self.interactive_slo_ms:
            self._decrease_locked()
        elif p99 <= self.interactive_slo_ms * _HEALTHY_FRACTION:
            # Includes the no-samples case: nothing breaching means
            # rates may recover (interactive first, deferrable last).
            self._increase_locked()
        self._m_rate_defer.set(round(self._rates[_DEFERRABLE], 3))
        self._m_rate_inter.set(round(self._rates[_INTERACTIVE], 3))

    def _decrease_locked(self) -> None:
        if self._rates[_DEFERRABLE] > _DEFER_FLOOR:
            self._rates[_DEFERRABLE] = max(
                _DEFER_FLOOR, self._rates[_DEFERRABLE] * _DECREASE)
        else:
            self._rates[_INTERACTIVE] = max(
                _INTERACTIVE_FLOOR,
                self._rates[_INTERACTIVE] * _DECREASE)

    def _increase_locked(self) -> None:
        if self._rates[_INTERACTIVE] < 1.0:
            self._rates[_INTERACTIVE] = min(
                1.0, self._rates[_INTERACTIVE] + _INCREASE)
        elif self._rates[_DEFERRABLE] < 1.0:
            self._rates[_DEFERRABLE] = min(
                1.0, self._rates[_DEFERRABLE] + _INCREASE)

    # -- observability ------------------------------------------------------

    def _bind_metrics(self) -> None:
        registry = self.metrics
        self._m_admitted = registry.counter("overload_admitted_total")
        self._m_queued = registry.counter("overload_queued_total")
        self._m_shed = registry.counter("overload_shed_total")
        self._m_shed_class = {
            cls: registry.counter(f"overload_shed_{cls}_total")
            for cls in COST_CLASSES}
        self._m_expired = registry.counter(
            "overload_expired_in_queue_total")
        self._m_evicted = registry.counter(
            "overload_queue_evictions_total")
        self._m_inflight = registry.gauge("overload_inflight")
        self._m_queue_depth = registry.gauge("overload_queue_depth")
        self._m_rate_defer = registry.gauge(
            "overload_admit_rate_deferrable")
        self._m_rate_inter = registry.gauge(
            "overload_admit_rate_interactive")
        self._m_service_rate = registry.gauge("overload_service_rate")
        self._m_window_p99 = registry.gauge(
            "overload_interactive_window_p99_ms")
        self._m_queue_wait = registry.histogram("overload_queue_wait_ms")
        self._m_latency = {
            cls: registry.histogram(f"overload_latency_ms_{cls}")
            for cls in COST_CLASSES}
        # Completions by cost class as one labeled family — the scrape
        # consumer slices ``overload_requests_by_class{cost_class=...}``
        # instead of discovering per-class key names.
        self._m_by_class = registry.labeled(
            "overload_requests_by_class", "cost_class", max_series=8)
        self._m_rate_defer.set(1.0)
        self._m_rate_inter.set(1.0)

    def stats(self) -> dict[str, float]:
        """Flat counters for ``attach_stats_source`` and tests."""
        with self._lock:
            return {
                "inflight": self._inflight,
                "queue_depth": len(self._queue),
                "max_concurrent": self.max_concurrent,
                "queue_limit": self.queue_limit,
                "admit_rate_deferrable": round(
                    self._rates[_DEFERRABLE], 3),
                "admit_rate_interactive": round(
                    self._rates[_INTERACTIVE], 3),
                "service_rate_rps": round(self._service_rate, 3),
                "admitted": self._m_admitted.value,
                "queued": self._m_queued.value,
                "shed": self._m_shed.value,
                "expired_in_queue": self._m_expired.value,
                "evicted": self._m_evicted.value,
                "slo_ms": self.interactive_slo_ms,
            }
