"""Admission control and load shedding for the serving stack.

The paper's gateway assumed polite CGI traffic; at the ROADMAP's
"millions of users" scale the steady state is *overload*, and the
difference between a server that degrades gracefully and one that
collapses is who gets told "no", how early, and how honestly.  This
package is that decision, factored into three pieces:

* :mod:`repro.overload.retryafter` — one shared definition of what a
  503's ``Retry-After`` header says, used by both HTTP edges, the
  circuit breaker, the app-server pool and the shedder.
* :mod:`repro.overload.classify` — per-request cost classes
  (cached-read / interactive / heavy-report / unclassified) from static
  rules plus a learned latency profile, so a 100k-row report and a
  cache hit stop competing as equals.
* :mod:`repro.overload.control` — the :class:`OverloadController`:
  a bounded admission queue with weighted fair queueing across client
  keys, an AIMD shedder driven by the windowed interactive p99, and
  queue-time accounting against the request deadline so work that
  expires waiting is shed for ~0 cost.
"""

from repro.overload.classify import (
    CACHED,
    COST_CLASSES,
    HEAVY,
    INTERACTIVE,
    UNCLASSIFIED,
    LatencyProfiler,
    RequestClassifier,
)
from repro.overload.control import AdmissionTicket, OverloadController
from repro.overload.retryafter import (
    clamp_retry_hint,
    queue_retry_hint,
    retry_after_header,
    retry_after_seconds,
)

__all__ = [
    "AdmissionTicket",
    "CACHED",
    "COST_CLASSES",
    "HEAVY",
    "INTERACTIVE",
    "LatencyProfiler",
    "OverloadController",
    "RequestClassifier",
    "UNCLASSIFIED",
    "clamp_retry_hint",
    "queue_retry_hint",
    "retry_after_header",
    "retry_after_seconds",
]
