"""Per-request cost classes: cached-read / interactive / heavy-report.

Admission control is only as smart as its notion of cost.  A cache hit
costs microseconds, a selective search costs a few milliseconds, and an
empty-search full-table report costs thousands of times more — treating
them as equals is how a FIFO queue lets one heavy report starve a
hundred interactive users.  Classification combines three signals:

* **Static rules** — anything outside ``/cgi-bin/`` is a cached read
  (in-memory pages, ``/metrics``); an ``input``-mode macro command is
  interactive (it renders a form, no report query).  Deployments add
  their own ``(substring, class)`` rules for URLs they know are heavy.
* **A pluggable probe** — an optional callable that may recognise a
  request outright (e.g. an application that can check its query-result
  cache for the exact request).
* **A learned latency profile** — the controller feeds observed service
  times back per request key; keys whose recent service time sits under
  the cached threshold become :data:`CACHED`, over the heavy threshold
  become :data:`HEAVY`.  This is the practical query-cache probe: a
  cache hit *is* a sub-millisecond observation, so repeated queries
  migrate into the cheap class without the classifier ever seeing the
  SQL.

Fresh report-mode requests start :data:`UNCLASSIFIED` — and the shedder
sheds unclassified and heavy traffic first, so an unknown query proves
itself cheap before it competes with interactive users under pressure.

The module deliberately imports nothing from :mod:`repro.http`; a
"request" here is anything with ``method``, ``path`` and ``query``
attributes (both the HTTP request object and test doubles qualify).
"""

from __future__ import annotations

import threading
from typing import Callable, Optional

#: The cost classes, cheapest first.
CACHED = "cached"
INTERACTIVE = "interactive"
HEAVY = "heavy"
UNCLASSIFIED = "unclassified"

COST_CLASSES = (CACHED, INTERACTIVE, HEAVY, UNCLASSIFIED)

_CGI_PREFIX = "/cgi-bin/"


class LatencyProfiler:
    """A bounded map of request key → EWMA service time (milliseconds).

    The controller calls :meth:`observe` after every completed request;
    :meth:`classify` answers from the profile once a key has enough
    observations.  Bounded LRU-ish eviction (drop the coldest half when
    full) keeps memory constant under URL churn.
    """

    def __init__(self, *, max_keys: int = 4096,
                 cached_threshold_ms: float = 5.0,
                 heavy_threshold_ms: float = 50.0,
                 min_samples: int = 3, alpha: float = 0.3):
        self.max_keys = max_keys
        self.cached_threshold_ms = cached_threshold_ms
        self.heavy_threshold_ms = heavy_threshold_ms
        self.min_samples = min_samples
        self.alpha = alpha
        self._lock = threading.Lock()
        # key -> [ewma_ms, samples]; dict order doubles as recency
        # (observed keys are re-inserted).
        self._profile: dict[str, list] = {}

    def observe(self, key: str, service_ms: float) -> None:
        with self._lock:
            entry = self._profile.pop(key, None)
            if entry is None:
                entry = [service_ms, 1]
            else:
                entry[0] += self.alpha * (service_ms - entry[0])
                entry[1] += 1
            self._profile[key] = entry
            if len(self._profile) > self.max_keys:
                # Drop the coldest half in one sweep; per-observation
                # cost stays O(1) amortised.
                for stale in list(self._profile)[:self.max_keys // 2]:
                    del self._profile[stale]

    def classify(self, key: str) -> Optional[str]:
        """The learned class for ``key``; ``None`` while unproven."""
        with self._lock:
            entry = self._profile.get(key)
            if entry is None or entry[1] < self.min_samples:
                return None
            ewma = entry[0]
        if ewma <= self.cached_threshold_ms:
            return CACHED
        if ewma >= self.heavy_threshold_ms:
            return HEAVY
        return INTERACTIVE

    def __len__(self) -> int:
        with self._lock:
            return len(self._profile)


class RequestClassifier:
    """Maps a request to ``(key, cost_class)``.

    ``rules`` are ``(substring, class)`` pairs matched against the full
    target (path plus query) in order — the operator's knowledge of
    which URLs are expensive.  ``probe`` may answer authoritatively
    before any rule.  The profiler (shared with the controller, which
    feeds it) refines whatever the static signals guessed.
    """

    def __init__(self, *,
                 rules: Optional[list[tuple[str, str]]] = None,
                 probe: Optional[Callable[[object], Optional[str]]] = None,
                 profiler: Optional[LatencyProfiler] = None):
        for _, cls in (rules or []):
            if cls not in COST_CLASSES:
                raise ValueError(f"unknown cost class {cls!r}")
        self.rules = list(rules or [])
        self.probe = probe
        self.profiler = profiler if profiler is not None \
            else LatencyProfiler()

    def key_for(self, request) -> str:
        query = getattr(request, "query", "") or ""
        return f"{request.path}?{query}" if query else request.path

    def classify(self, request) -> tuple[str, str]:
        key = self.key_for(request)
        if self.probe is not None:
            answer = self.probe(request)
            if answer is not None:
                return key, answer
        target = key
        for fragment, cls in self.rules:
            if fragment in target:
                return key, cls
        learned = self.profiler.classify(key)
        if learned is not None:
            return key, learned
        return key, self._static_class(request)

    def observe(self, key: str, service_ms: float) -> None:
        """Feed a completed request's service time into the profile."""
        self.profiler.observe(key, service_ms)

    def _static_class(self, request) -> str:
        path = request.path
        if not path.startswith(_CGI_PREFIX):
            # Static pages, /metrics, /statusz: served from memory.
            return CACHED
        last = path.rstrip("/").rsplit("/", 1)[-1]
        if last == "input":
            # Input mode renders the form — no report query runs.
            return INTERACTIVE
        return UNCLASSIFIED
