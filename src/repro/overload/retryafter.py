"""One shared definition of ``Retry-After`` for every 503 we send.

Before this module, four call sites each invented their own semantics:
the threaded edge hard-coded ``Retry-After: 1``, the async edge did the
same, the circuit breaker shipped a raw (possibly negative) float on
:class:`~repro.errors.CircuitOpenError`, and the CGI gateway ceil'd
whatever arrived.  A client that honours the header deserves one
answer, so the rules live here:

* **Carriers** (exception attributes, frame fields) hold a *seconds
  hint* as a non-negative finite float — :func:`clamp_retry_hint`.
* **Headers** hold an integral number of seconds, at least 1 (RFC 7231
  allows 0 but real clients treat it as "hammer immediately"), capped
  so a transient stall never tells a client to go away for an hour —
  :func:`retry_after_seconds` / :func:`retry_after_header`.
* **Honesty**: when queue state is known, the hint is *computed* from
  it — :func:`queue_retry_hint` estimates when the current backlog
  will have drained at the observed service rate, which is when a
  retry has a real chance of being admitted.
"""

from __future__ import annotations

import math
from typing import Optional

#: Never tell a client to wait longer than this (seconds); a 503 is a
#: transient condition and the estimate degrades fast anyway.
MAX_RETRY_AFTER = 60.0


def clamp_retry_hint(seconds: Optional[float],
                     default: float = 1.0) -> float:
    """A seconds hint made safe to carry on an error object.

    Negative, NaN and infinite values (a breaker whose reset window
    just elapsed computes ``reset_timeout - elapsed`` slightly below
    zero) collapse to 0.0; ``None`` means "no idea" and yields
    ``default``.
    """
    if seconds is None:
        return default
    if not math.isfinite(seconds) or seconds < 0.0:
        return 0.0
    return float(seconds)


def retry_after_seconds(hint: Optional[float], *,
                        minimum: int = 1,
                        maximum: float = MAX_RETRY_AFTER) -> int:
    """The integral header value for a seconds hint.

    Rounds up (a client told "1" must not retry after 0.4s when the
    estimate was 0.5s), floors at ``minimum`` and caps at ``maximum``.
    """
    if hint is None or not math.isfinite(hint):
        return minimum
    return int(max(minimum, min(math.ceil(hint), math.ceil(maximum))))


def retry_after_header(hint: Optional[float], *,
                       minimum: int = 1,
                       maximum: float = MAX_RETRY_AFTER) -> str:
    """``Retry-After`` header value (delta-seconds form) for a hint."""
    return str(retry_after_seconds(hint, minimum=minimum,
                                   maximum=maximum))


def queue_retry_hint(queue_depth: int,
                     service_rate: float) -> Optional[float]:
    """Seconds until a retry is likely to be admitted.

    The backlog of ``queue_depth`` waiters drains at ``service_rate``
    completions per second; a client retrying after that window joins a
    (mostly) empty queue.  ``None`` when the rate is unknown or zero —
    the caller falls back to the 1-second default.
    """
    if service_rate <= 0.0 or not math.isfinite(service_rate):
        return None
    return (queue_depth + 1) / service_rate
