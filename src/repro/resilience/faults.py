"""Fault injection: scripted and probabilistic database failures.

The standing chaos-test tool of the repository.  A
:class:`FaultInjector` is built from a compact spec string and wired in
at one of three places:

* around a connection factory (:func:`wrap_factory`, or
  ``DatabaseRegistry.inject_faults``) — connections it produces fail to
  open, fail mid-query, slow down, or drop their socket;
* the CLI, via ``--inject-faults SPEC`` on ``run``/``render``/``serve``;
* ambiently for a whole test run (``pytest --inject-faults SPEC``) —
  the gateway then injects *retry-safe* faults into idempotent reads
  and absorbs them with a default retry policy, proving the suite is
  failure-tolerant.

Spec grammar (clauses joined with commas)::

    prob:P            connect and query faults, each with probability P
    connect:P         connection establishment fails (SQLSTATE 08001)
    query:P           a statement fails with a transient class
                      (40001 deadlock / 57033 timeout / 57030 unavailable)
    slow:P[:SECONDS]  a statement stalls SECONDS (default 0.05) first
    disconnect:P      the connection drops mid-query (broken socket)
    every:N[:KIND]    deterministic: every Nth KIND operation fails
                      (KIND defaults to query)
    down              the backend is unreachable: every connect fails
    seed:N            seed the injector's RNG (default 96)

Example: ``--inject-faults prob:0.05,slow:0.01:0.02,seed:7``.

All injection happens *before* the real operation runs, so an injected
fault never leaves partial state behind — which is what makes the
ambient mode safe to retry.
"""

from __future__ import annotations

import random
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Optional

from repro.errors import (
    ReproError,
    SQLConnectError,
    SQLDeadlockError,
    SQLError,
    SQLTimeoutError,
    PoolExhaustedError,
)
from repro.sql.connection import Connection

#: Fault kinds with a probability knob.
_PROB_KINDS = ("connect", "query", "slow", "disconnect")

#: The transient error classes a ``query`` fault cycles through.
_QUERY_ERRORS: tuple[Callable[[str], SQLError], ...] = (
    lambda sql: SQLDeadlockError(
        f"injected deadlock (40001) for: {sql[:60]}"),
    lambda sql: SQLTimeoutError(
        f"injected timeout (57033) for: {sql[:60]}"),
    lambda sql: PoolExhaustedError(
        f"injected resource-unavailable (57030) for: {sql[:60]}"),
)


class FaultSpecError(ReproError):
    """An ``--inject-faults`` spec string could not be parsed."""


@dataclass
class FaultSpec:
    """Parsed fault configuration (see the module grammar)."""

    connect: float = 0.0
    query: float = 0.0
    slow: float = 0.0
    slow_seconds: float = 0.05
    disconnect: float = 0.0
    every: int = 0
    every_kind: str = "query"
    down: bool = False
    seed: int = 96

    @classmethod
    def parse(cls, text: str) -> "FaultSpec":
        spec = cls()
        for clause in filter(None, (c.strip() for c in text.split(","))):
            head, *args = clause.split(":")
            head = head.lower()
            try:
                if head == "prob":
                    (rate,) = args
                    spec.connect = spec.query = _rate(rate)
                elif head in ("connect", "query", "disconnect"):
                    (rate,) = args
                    setattr(spec, head, _rate(rate))
                elif head == "slow":
                    spec.slow = _rate(args[0])
                    if len(args) > 1:
                        spec.slow_seconds = float(args[1])
                elif head == "every":
                    spec.every = int(args[0])
                    if spec.every < 1:
                        raise FaultSpecError(
                            f"every:N needs N >= 1, got {spec.every}")
                    if len(args) > 1:
                        kind = args[1].lower()
                        if kind not in ("connect", "query"):
                            raise FaultSpecError(
                                f"every:N:{kind}: kind must be "
                                "connect or query")
                        spec.every_kind = kind
                elif head == "down":
                    spec.down = True
                elif head == "seed":
                    (value,) = args
                    spec.seed = int(value)
                else:
                    raise FaultSpecError(
                        f"unknown fault clause {clause!r}")
            except FaultSpecError:
                raise
            except (ValueError, TypeError) as exc:
                raise FaultSpecError(
                    f"bad fault clause {clause!r}: {exc}") from exc
        return spec


def _rate(text: str) -> float:
    value = float(text)
    if not 0.0 <= value <= 1.0:
        raise FaultSpecError(f"probability {value} outside [0, 1]")
    return value


class FaultInjector:
    """Injects failures according to a :class:`FaultSpec`.

    Deterministic for a given seed and operation sequence; thread-safe
    (one lock guards the RNG and the counters), so a single injector can
    sit under a concurrent workload.
    """

    def __init__(self, spec: FaultSpec | str | None = None, *,
                 seed: Optional[int] = None,
                 sleep: Callable[[float], None] = time.sleep):
        if isinstance(spec, str):
            spec = FaultSpec.parse(spec)
        self.spec = spec or FaultSpec()
        self._rng = random.Random(
            seed if seed is not None else self.spec.seed)
        self._sleep = sleep
        self._lock = threading.Lock()
        self._ops = {"connect": 0, "query": 0}
        self._injected = {kind: 0 for kind in
                          (*_PROB_KINDS, "every", "down")}

    @classmethod
    def parse(cls, text: str, **kwargs: Any) -> "FaultInjector":
        return cls(FaultSpec.parse(text), **kwargs)

    # -- injection points ------------------------------------------------

    def before_connect(self) -> None:
        """Fault point for connection establishment."""
        with self._lock:
            self._ops["connect"] += 1
            if self.spec.down:
                self._injected["down"] += 1
                raise SQLConnectError("injected outage: backend is down")
            if self._nth("connect"):
                self._injected["every"] += 1
                raise SQLConnectError("injected connect failure (every)")
            if self._roll(self.spec.connect):
                self._injected["connect"] += 1
                raise SQLConnectError("injected connect failure")

    def before_query(self, sql: str,
                     connection: Optional[Connection] = None) -> None:
        """Fault point for statement execution.

        Raised faults happen *before* the statement touches the
        database.  ``disconnect`` additionally closes ``connection`` so
        the caller's pool sees a genuinely dead connection.
        """
        stall = 0.0
        error: Optional[SQLError] = None
        drop = False
        with self._lock:
            self._ops["query"] += 1
            if self._nth("query"):
                self._injected["every"] += 1
                error = self._rng.choice(_QUERY_ERRORS)(sql)
            elif self._roll(self.spec.disconnect):
                self._injected["disconnect"] += 1
                drop = True
                error = SQLConnectError(
                    "injected broken socket: connection lost",
                    sqlstate="08006")
            elif self._roll(self.spec.query):
                self._injected["query"] += 1
                error = self._rng.choice(_QUERY_ERRORS)(sql)
            if self._roll(self.spec.slow):
                self._injected["slow"] += 1
                stall = self.spec.slow_seconds
        if stall > 0.0:
            self._sleep(stall)
        if drop and connection is not None:
            connection.close()
        if error is not None:
            raise error

    # -- internals (call with the lock held) -----------------------------

    def _roll(self, probability: float) -> bool:
        return probability > 0.0 and self._rng.random() < probability

    def _nth(self, kind: str) -> bool:
        return (self.spec.every > 0 and self.spec.every_kind == kind
                and self._ops[kind] % self.spec.every == 0)

    # -- observability ---------------------------------------------------

    def stats(self) -> dict[str, int]:
        """Cumulative counters: operations seen and faults injected."""
        with self._lock:
            stats = {f"{kind}_ops": count
                     for kind, count in self._ops.items()}
            stats.update({f"injected_{kind}": count
                          for kind, count in self._injected.items()})
            stats["injected_total"] = sum(self._injected.values())
            return stats


class FaultyConnection:
    """A :class:`Connection` proxy that consults a fault injector.

    Statement execution passes through :meth:`FaultInjector.before_query`
    first; everything else (transactions, close, generation, ping)
    delegates to the wrapped connection untouched, so health checks and
    pool eviction observe the *real* connection state.
    """

    def __init__(self, connection: Connection, injector: FaultInjector):
        self._conn = connection
        self._injector = injector

    def execute(self, sql: str, parameters: Iterable[Any] = ()):
        self._injector.before_query(sql, self._conn)
        return self._conn.execute(sql, parameters)

    def executescript(self, script: str) -> None:
        self._injector.before_query(script, self._conn)
        self._conn.executescript(script)

    # generation is read *and written* by the registry; a plain
    # __getattr__ fallback would set it on the proxy, not the target.
    @property
    def generation(self):
        return self._conn.generation

    @generation.setter
    def generation(self, value) -> None:
        self._conn.generation = value

    def __getattr__(self, name: str):
        return getattr(self._conn, name)

    def __enter__(self) -> "FaultyConnection":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self._conn.close()


ConnectionFactory = Callable[[], Connection]


def wrap_factory(factory: ConnectionFactory,
                 injector: FaultInjector) -> ConnectionFactory:
    """Wrap a connection factory so its connections misbehave on cue."""

    def faulty_factory() -> Connection:
        injector.before_connect()
        return FaultyConnection(factory(), injector)  # type: ignore[return-value]

    return faulty_factory


# ---------------------------------------------------------------------------
# Ambient injection (chaos mode for a whole test run)
# ---------------------------------------------------------------------------

_ambient: Optional[FaultInjector] = None


def set_ambient_injector(injector: Optional[FaultInjector]) -> None:
    """Install (or clear) the process-wide ambient injector.

    While set, :class:`~repro.sql.gateway.MacroSqlSession` injects
    transient faults into idempotent reads *before* they execute and —
    when the caller configured no policy of its own — absorbs them with
    :data:`repro.resilience.retry.DEFAULT_RETRY`.  The tier-1 suite must
    pass unchanged with an ambient ``prob:0.05`` injector; CI runs that
    combination (see the ``chaos`` job).
    """
    global _ambient
    _ambient = injector


def ambient_injector() -> Optional[FaultInjector]:
    return _ambient
