"""A circuit breaker per registered database.

When a backend is down, every request otherwise pays the full connect
timeout while holding a pool slot — the failure of one database becomes
latency for every database.  The breaker counts consecutive connect
failures; past the threshold it *opens* and rejects immediately with
:class:`~repro.errors.CircuitOpenError` (which the HTTP layer maps to
503 + ``Retry-After``).  After ``reset_timeout`` it lets one probe
through (*half-open*); a successful probe closes the circuit, a failed
one re-opens it.
"""

from __future__ import annotations

import enum
import threading
import time
from typing import Callable, TypeVar

from repro.errors import CircuitOpenError
from repro.overload.retryafter import clamp_retry_hint

T = TypeVar("T")


class BreakerState(enum.Enum):
    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half_open"


class CircuitBreaker:
    """Consecutive-failure breaker with a single half-open probe.

    Thread-safe; all decisions happen under one lock, so the "exactly
    one probe at a time" rule holds across the server's request threads.
    """

    def __init__(self, *, failure_threshold: int = 5,
                 reset_timeout: float = 1.0, name: str = "",
                 clock: Callable[[], float] = time.monotonic):
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be at least 1")
        self.name = name
        self.failure_threshold = failure_threshold
        self.reset_timeout = reset_timeout
        self._clock = clock
        self._lock = threading.Lock()
        self._state = BreakerState.CLOSED
        self._consecutive_failures = 0
        self._opened_at = 0.0
        self._probe_inflight = False
        # cumulative counters for observability
        self._opens = 0
        self._rejections = 0
        self._probes = 0

    # -- decisions -------------------------------------------------------

    def allow(self) -> None:
        """Admit one operation or raise :class:`CircuitOpenError`.

        Every admitted operation must be balanced with exactly one
        :meth:`record_success` or :meth:`record_failure` call.
        """
        with self._lock:
            if self._state is BreakerState.CLOSED:
                return
            if self._state is BreakerState.OPEN:
                elapsed = self._clock() - self._opened_at
                if elapsed < self.reset_timeout:
                    self._rejections += 1
                    # The shared clamp keeps the carried hint finite and
                    # non-negative (a clock race can make the remaining
                    # window fractionally negative).
                    raise CircuitOpenError(
                        self._describe("is open"),
                        retry_after=clamp_retry_hint(
                            self.reset_timeout - elapsed))
                self._state = BreakerState.HALF_OPEN
                self._probe_inflight = False
            # HALF_OPEN: admit a single probe; concurrent callers are
            # rejected until it reports back.
            if self._probe_inflight:
                self._rejections += 1
                raise CircuitOpenError(
                    self._describe("is half-open, probe in flight"),
                    retry_after=clamp_retry_hint(self.reset_timeout))
            self._probe_inflight = True
            self._probes += 1

    def record_success(self) -> None:
        with self._lock:
            self._consecutive_failures = 0
            self._probe_inflight = False
            self._state = BreakerState.CLOSED

    def record_failure(self) -> None:
        with self._lock:
            self._consecutive_failures += 1
            if self._state is BreakerState.HALF_OPEN:
                self._trip()
            elif (self._state is BreakerState.CLOSED
                  and self._consecutive_failures >= self.failure_threshold):
                self._trip()

    def _trip(self) -> None:
        self._state = BreakerState.OPEN
        self._opened_at = self._clock()
        self._probe_inflight = False
        self._opens += 1

    def call(self, func: Callable[[], T]) -> T:
        """Run ``func`` under the breaker's accounting."""
        self.allow()
        try:
            result = func()
        except BaseException:
            self.record_failure()
            raise
        self.record_success()
        return result

    # -- inspection ------------------------------------------------------

    @property
    def state(self) -> BreakerState:
        with self._lock:
            if (self._state is BreakerState.OPEN
                    and self._clock() - self._opened_at
                    >= self.reset_timeout):
                return BreakerState.HALF_OPEN
            return self._state

    def stats(self) -> dict[str, int]:
        with self._lock:
            return {
                "opens": self._opens,
                "rejections": self._rejections,
                "probes": self._probes,
                "consecutive_failures": self._consecutive_failures,
            }

    def _describe(self, what: str) -> str:
        target = f"database {self.name!r}" if self.name else "backend"
        return f"circuit breaker for {target} {what}"
