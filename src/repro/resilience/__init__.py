"""Resilience layer: faults, retries, deadlines and circuit breaking.

The paper's engine ran one CGI invocation per request against a remote
DB2 gateway, so every transient database hiccup surfaced to the browser
as a dead page — ``%SQL_MESSAGE`` (Section 3.5) was the only degradation
mechanism.  This package gives the grown-up gateway real failure
handling:

* :mod:`repro.resilience.faults` — a fault-injection harness that wraps
  any :class:`~repro.sql.connection.Connection` (or factory) and injects
  scripted or probabilistic failures, used by tests, the CLI
  (``--inject-faults``) and the workload runner;
* :mod:`repro.resilience.retry` — exponential backoff with jitter,
  applied only to idempotent reads;
* :mod:`repro.resilience.deadline` — per-request time budgets honoured
  by the pool, the retry loop and the CGI subprocess runner;
* :mod:`repro.resilience.breaker` — a circuit breaker per registered
  database so an unreachable backend fails fast (503 + ``Retry-After``)
  instead of tying up pool slots.
"""

from repro.resilience.breaker import BreakerState, CircuitBreaker
from repro.resilience.deadline import Deadline
from repro.resilience.faults import (
    FaultInjector,
    FaultSpecError,
    ambient_injector,
    set_ambient_injector,
    wrap_factory,
)
from repro.resilience.retry import RetryPolicy, call_with_retry

__all__ = [
    "BreakerState",
    "CircuitBreaker",
    "Deadline",
    "FaultInjector",
    "FaultSpecError",
    "RetryPolicy",
    "ambient_injector",
    "call_with_retry",
    "set_ambient_injector",
    "wrap_factory",
]
