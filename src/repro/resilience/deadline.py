"""Per-request deadline budgets.

A 1996 CGI process had an implicit deadline — the web server killed it
after a configured wall-clock limit — but nothing inside the request
knew about it, so a slow database burned the whole budget in one place.
:class:`Deadline` makes the budget explicit and threadable through the
layers: the engine creates one per macro invocation, the retry loop
refuses to sleep past it, ``ConnectionPool.acquire`` caps its wait on
it, and the CGI subprocess runner caps the child's timeout.
"""

from __future__ import annotations

import time
from typing import Callable, Optional

from repro.errors import DeadlineExceededError


class Deadline:
    """A monotonic point in time after which a request must give up."""

    __slots__ = ("expires_at", "_clock")

    def __init__(self, expires_at: float,
                 clock: Callable[[], float] = time.monotonic):
        self.expires_at = expires_at
        self._clock = clock

    @classmethod
    def after(cls, seconds: float,
              clock: Callable[[], float] = time.monotonic) -> "Deadline":
        """A deadline ``seconds`` from now."""
        return cls(clock() + seconds, clock)

    def remaining(self) -> float:
        """Seconds left; never negative."""
        return max(0.0, self.expires_at - self._clock())

    @property
    def expired(self) -> bool:
        return self._clock() >= self.expires_at

    def check(self, what: str = "request") -> None:
        """Raise :class:`DeadlineExceededError` when the budget is spent."""
        if self.expired:
            raise DeadlineExceededError(f"{what} deadline exceeded")

    @classmethod
    def tightest(cls, deadline: Optional["Deadline"],
                 seconds: Optional[float]) -> Optional["Deadline"]:
        """The tighter of an existing deadline and a fresh ``seconds`` budget.

        The sharded scatter path hands each shard worker
        ``tightest(request_deadline, shard_timeout)``: a shard may never
        outspend the request, and a per-shard bound (when configured)
        caps it further so one slow shard degrades alone.  Either side
        may be ``None``; both ``None`` means no deadline at all.
        """
        if seconds is None:
            return deadline
        if deadline is not None and deadline.remaining() <= seconds:
            return deadline
        return cls.after(seconds)

    def cap(self, timeout: Optional[float]) -> float:
        """Cap a layer's own timeout by the time remaining.

        ``None`` means the layer had no timeout of its own; the deadline
        becomes the only bound.
        """
        remaining = self.remaining()
        if timeout is None:
            return remaining
        return min(timeout, remaining)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Deadline(remaining={self.remaining():.3f}s)"


def remaining_or(deadline: Optional[Deadline], default: float) -> float:
    """``deadline.remaining()``, or ``default`` when there is no deadline."""
    return default if deadline is None else deadline.remaining()
