"""Retry with exponential backoff and jitter.

Only *idempotent* work is ever retried: connection establishment and
pure-read statements (``SELECT``/``VALUES``/``WITH`` — the same set the
query-result cache accepts).  A write that failed mid-transaction is
never re-run; it surfaces to ``%SQL_MESSAGE`` handling instead.  The
retry loop also refuses to sleep past a request's
:class:`~repro.resilience.deadline.Deadline`.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass
from typing import Callable, Optional, TypeVar

from repro.errors import SQLError, is_transient
from repro.resilience.deadline import Deadline

T = TypeVar("T")


@dataclass(frozen=True)
class RetryPolicy:
    """Exponential backoff schedule: ``base * multiplier**(n-1)``, capped.

    ``jitter`` is the fraction of each delay that is randomised — the
    classic "full jitter over the top half": with ``jitter=0.5`` a
    nominal 40 ms delay sleeps uniformly in [20 ms, 40 ms], decorrelating
    retry storms from many concurrent requests.
    """

    max_attempts: int = 3
    base_delay: float = 0.01
    multiplier: float = 2.0
    max_delay: float = 0.5
    jitter: float = 0.5

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be at least 1")
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError("jitter must be within [0, 1]")

    def delay(self, attempt: int,
              rng: Optional[random.Random] = None) -> float:
        """Sleep before retry number ``attempt`` (1 = first retry)."""
        if attempt < 1:
            raise ValueError("attempt numbers start at 1")
        nominal = min(self.max_delay,
                      self.base_delay * self.multiplier ** (attempt - 1))
        if self.jitter <= 0.0:
            return nominal
        rng = rng if rng is not None else random
        return nominal * (1.0 - self.jitter * rng.random())

    @property
    def retries(self) -> int:
        return self.max_attempts - 1


#: A policy that never retries (single attempt).
NO_RETRY = RetryPolicy(max_attempts=1)

#: The policy applied when an ambient fault injector is active and the
#: caller configured nothing: absorbs injected transient read faults.
DEFAULT_RETRY = RetryPolicy(max_attempts=4, base_delay=0.002,
                            max_delay=0.05)


def call_with_retry(func: Callable[[], T], *,
                    policy: RetryPolicy,
                    deadline: Optional[Deadline] = None,
                    is_retryable: Callable[[BaseException], bool]
                    = is_transient,
                    rng: Optional[random.Random] = None,
                    sleep: Callable[[float], None] = time.sleep,
                    on_retry: Optional[Callable[[int, SQLError, float],
                                                None]] = None) -> T:
    """Run ``func`` under ``policy``, retrying transient failures.

    ``on_retry(attempt, error, delay)`` is called before each sleep so
    callers can count retries.  The final failure is re-raised as-is.
    A deadline stops retrying early: when the next backoff would sleep
    past it, the last error surfaces immediately.
    """
    attempt = 1
    while True:
        if deadline is not None:
            deadline.check()
        try:
            return func()
        except SQLError as exc:
            if attempt >= policy.max_attempts or not is_retryable(exc):
                raise
            delay = policy.delay(attempt, rng)
            if deadline is not None and deadline.remaining() <= delay:
                raise
            if on_retry is not None:
                on_retry(attempt, exc, delay)
            sleep(delay)
            attempt += 1
