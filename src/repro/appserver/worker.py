"""The app-server worker process: ``python -m repro.appserver.worker``.

One worker is one long-lived process that builds the DB2WWW program
*once* — parsed :class:`~repro.core.macrofile.MacroLibrary`, engine with
pooled connections and a query-result cache — then serves request frames
off its dispatcher socket until told to shut down.  That amortisation is
the whole point of the application-server model (Section 2.3's per-exec
cost paid once per worker lifetime instead of once per request).

Configuration rides the same environment variables as the stand-alone
CGI executable (:mod:`repro.cgi.db2www_main`), plus:

``REPRO_APPSERVER_SOCKET``
    The dispatcher's rendezvous endpoint: a Unix socket path, or
    ``host:port`` for the TCP transport.  Required.
``REPRO_APPSERVER_WORKER_ID``
    Slot number announced in the ``HELLO`` frame.
``REPRO_WORKER_FAULTS``
    A :mod:`repro.resilience.faults` spec; when a fault fires on a
    request the worker dies with ``os._exit`` *mid-request* — the
    chaos hook the dispatcher's crash-replacement test drives.
"""

from __future__ import annotations

import os
import socket
import sys

from repro.appserver import protocol
from repro.cgi.db2www_main import build_program
from repro.cgi.gateway import CgiGateway
from repro.errors import SQLError
from repro.obs.trace import TRACER
from repro.resilience.faults import FaultInjector

_PROGRAM_NAME = "db2www"


def worker_main(env: dict[str, str] | None = None) -> int:
    env = dict(os.environ) if env is None else env
    socket_path = env.get("REPRO_APPSERVER_SOCKET")
    if not socket_path:
        raise RuntimeError("REPRO_APPSERVER_SOCKET is not configured")
    worker_id = int(env.get("REPRO_APPSERVER_WORKER_ID", "0") or 0)

    # Warm state: everything request-independent is built exactly once.
    program = build_program(env)
    gateway = CgiGateway()
    gateway.install(_PROGRAM_NAME, program)

    injector = None
    faults = env.get("REPRO_WORKER_FAULTS")
    if faults:
        injector = FaultInjector.parse(faults)

    sock = protocol.connect_endpoint(socket_path)
    try:
        protocol.send_frame(
            sock, protocol.FRAME_HELLO,
            protocol.encode_control({"worker_id": worker_id,
                                     "pid": os.getpid()}))
        return _serve(sock, gateway, injector, worker_id)
    finally:
        sock.close()


def _serve(sock: socket.socket, gateway: CgiGateway,
           injector: FaultInjector | None, worker_id: int) -> int:
    served = 0
    while True:
        frame = protocol.recv_frame(sock)
        if frame is None:
            return 0  # dispatcher went away; nothing left to serve
        frame_type, payload = frame
        if frame_type == protocol.FRAME_SHUTDOWN:
            return 0
        if frame_type == protocol.FRAME_PING:
            protocol.send_frame(
                sock, protocol.FRAME_PONG,
                protocol.encode_control({"worker_id": worker_id,
                                         "pid": os.getpid(),
                                         "served": served}))
            continue
        if frame_type != protocol.FRAME_REQUEST:
            return 1  # protocol violation; die and be replaced
        if injector is not None:
            try:
                injector.before_query("appserver-request")
            except SQLError:
                # Simulated worker crash *mid-request*: the dispatcher
                # has sent the frame and is waiting on the response.
                os._exit(1)
        request = protocol.decode_request(payload)
        # The request frame carries the dispatcher's trace id
        # (REPRO_TRACE_ID in the CGI environment); the worker's spans
        # run under it and ship home in the response frame, where the
        # dispatcher grafts them into the live request trace.
        act = TRACER.begin("worker", trace_id=request.trace_id or None,
                           attrs={"worker_id": worker_id,
                                  "pid": os.getpid()})
        # dispatch() maps every failure to a 5xx response, so a macro
        # bug costs one error page, never the worker.
        response = gateway.dispatch(_PROGRAM_NAME, request)
        trace = None
        if act is not None:
            # Drain before closing the span: streamed pages fill in
            # their sql.execute row counts as the cursor empties.
            response.drain()
            act.span.set("status", response.status)
            act.finish()
            trace = act.span.to_dict()
        protocol.send_frame(sock, protocol.FRAME_RESPONSE,
                            protocol.encode_response(response,
                                                     trace=trace))
        served += 1


if __name__ == "__main__":  # pragma: no cover - spawned by dispatcher
    sys.exit(worker_main())
