"""The dispatcher↔worker frame protocol, over Unix *or* TCP sockets.

FastCGI-flavoured but deliberately tiny: every message on the socket is
one frame —

===========  =========================================================
``1 byte``    frame type (the ``FRAME_*`` constants)
``4 bytes``   payload length, unsigned big-endian
``N bytes``   payload
===========  =========================================================

Control frames (``HELLO``/``PING``/``PONG``/``SHUTDOWN``/``ERROR``)
carry a small JSON object or nothing.  ``REQUEST``/``RESPONSE``
payloads are a JSON header (CGI environment, or status line and
headers) length-prefixed the same way, followed by the raw body bytes —
the body is never JSON-escaped, so a megabyte page costs a memcpy, not
an encode.

The frame format is transport-agnostic: the same codecs run over the
dispatcher's local ``AF_UNIX`` rendezvous socket and over TCP between
hosts (``repro serve --listen`` pool daemons and ``--connect``
dispatchers — see :mod:`repro.appserver.remote`).  Endpoint strings
pick the transport: ``host:port`` means TCP, anything else is a Unix
socket path (:func:`parse_endpoint`).
"""

from __future__ import annotations

import json
import socket
import struct
from typing import Optional

from repro.cgi.environ import CgiEnvironment
from repro.cgi.request import CgiRequest, CgiResponse
from repro.errors import CgiProtocolError

FRAME_HELLO = 0x01      # worker → dispatcher, on connect
FRAME_REQUEST = 0x02    # dispatcher → worker
FRAME_RESPONSE = 0x03   # worker → dispatcher
FRAME_PING = 0x04       # dispatcher → worker, health check
FRAME_PONG = 0x05       # worker → dispatcher, carries counters
FRAME_SHUTDOWN = 0x06   # dispatcher → worker, drain and exit
FRAME_ERROR = 0x07      # pool daemon → remote dispatcher: the request
                        # failed pool-side (worker died on a
                        # non-replayable request, pool exhausted); the
                        # channel itself stays healthy

_FRAME_HEAD = struct.Struct(">BI")
_JSON_LEN = struct.Struct(">I")

#: A frame larger than this is a protocol violation, not a big page.
MAX_FRAME_SIZE = 64 * 1024 * 1024


def send_frame(sock: socket.socket, frame_type: int,
               payload: bytes = b"") -> None:
    sock.sendall(_FRAME_HEAD.pack(frame_type, len(payload)) + payload)


def recv_frame(sock: socket.socket) -> Optional[tuple[int, bytes]]:
    """Read one frame; ``None`` on clean EOF at a frame boundary.

    EOF in the *middle* of a frame means the peer died mid-message and
    raises :class:`CgiProtocolError` — the dispatcher treats that as a
    worker crash.
    """
    head = _recv_exact(sock, _FRAME_HEAD.size, eof_ok=True)
    if head is None:
        return None
    frame_type, length = _FRAME_HEAD.unpack(head)
    if length > MAX_FRAME_SIZE:
        raise CgiProtocolError(
            f"app-server frame of {length} bytes exceeds the "
            f"{MAX_FRAME_SIZE}-byte limit")
    payload = _recv_exact(sock, length) if length else b""
    return frame_type, payload


def _recv_exact(sock: socket.socket, count: int, *,
                eof_ok: bool = False) -> Optional[bytes]:
    parts = []
    remaining = count
    while remaining:
        chunk = sock.recv(min(remaining, 65536))
        if not chunk:
            if eof_ok and remaining == count:
                return None
            raise CgiProtocolError(
                "app-server connection closed mid-frame")
        parts.append(chunk)
        remaining -= len(chunk)
    return b"".join(parts)


# -- payload codecs --------------------------------------------------------

def _pack_json(header: dict, body: bytes) -> bytes:
    encoded = json.dumps(header, separators=(",", ":")).encode("utf-8")
    return _JSON_LEN.pack(len(encoded)) + encoded + body


def _unpack_json(payload: bytes) -> tuple[dict, bytes]:
    if len(payload) < _JSON_LEN.size:
        raise CgiProtocolError("app-server payload too short for header")
    (length,) = _JSON_LEN.unpack_from(payload)
    start = _JSON_LEN.size
    if len(payload) < start + length:
        raise CgiProtocolError("app-server payload header truncated")
    try:
        header = json.loads(payload[start:start + length])
    except ValueError as exc:
        raise CgiProtocolError(
            f"malformed app-server header: {exc}") from exc
    return header, payload[start + length:]


def encode_request(request: CgiRequest) -> bytes:
    # The environment dict is the complete request context: the trace
    # id, the authenticated REMOTE_USER and the tenant id (REPRO_TENANT)
    # all ride it, so a worker process serves a multi-tenant request
    # with the same identity the edge authenticated.
    return _pack_json({"environ": request.environ.to_dict()},
                      request.stdin)


def decode_request(payload: bytes) -> CgiRequest:
    header, body = _unpack_json(payload)
    environ = CgiEnvironment.from_dict(dict(header.get("environ", {})))
    return CgiRequest(environ=environ, stdin=body)


def encode_response(response: CgiResponse,
                    trace: Optional[dict] = None) -> bytes:
    # Workers answer with complete pages; a streaming body is drained
    # here (the dispatcher side of the socket re-buffers anyway).
    response.drain()
    header = {
        "status": response.status,
        "reason": response.reason,
        "headers": [[key, value] for key, value in response.headers],
    }
    if trace:
        # The worker's exported span tree (Span.to_dict), grafted into
        # the dispatcher's live request trace on the other side.
        header["trace"] = trace
    return _pack_json(header, response.body)


def decode_response(payload: bytes) -> CgiResponse:
    header, body = _unpack_json(payload)
    try:
        status = int(header["status"])
        reason = str(header.get("reason", "OK"))
        headers = [(str(k), str(v)) for k, v in header.get("headers", [])]
    except (KeyError, TypeError, ValueError) as exc:
        raise CgiProtocolError(
            f"malformed app-server response header: {exc}") from exc
    trace = header.get("trace")
    return CgiResponse(status=status, reason=reason, headers=headers,
                       body=body,
                       trace=trace if isinstance(trace, dict) else None)


# -- transport endpoints ---------------------------------------------------

def parse_endpoint(spec: str) -> tuple[str, object]:
    """Classify an endpoint string: ``("tcp", (host, port))`` when it
    looks like ``host:port`` (the port numeric), else ``("unix", path)``.

    A Unix socket path can contain colons, but never ends in ``:<int>``
    the way a TCP authority does, so the two spellings cannot collide in
    practice; TCP specs may also be written ``tcp:host:port`` to be
    explicit.
    """
    text = spec
    if text.startswith("tcp:"):
        text = text[len("tcp:"):]
        host, sep, port = text.rpartition(":")
        if not sep:
            raise ValueError(f"bad TCP endpoint {spec!r}: expected "
                             f"host:port")
        return "tcp", (host or "127.0.0.1", int(port))
    host, sep, port = text.rpartition(":")
    if sep and port.isdigit():
        return "tcp", (host or "127.0.0.1", int(port))
    return "unix", text


def connect_endpoint(spec: str, *,
                     timeout: Optional[float] = None) -> socket.socket:
    """Connect a stream socket to a Unix-path or ``host:port`` endpoint.

    TCP connections get ``TCP_NODELAY``: frames are written whole and
    waited on synchronously, so Nagle coalescing only adds latency.
    """
    kind, address = parse_endpoint(spec)
    if kind == "tcp":
        sock = socket.create_connection(address, timeout=timeout)
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        return sock
    sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
    if timeout is not None:
        sock.settimeout(timeout)
    try:
        sock.connect(address)
    except OSError:
        sock.close()
        raise
    return sock


def format_endpoint(kind: str, address) -> str:
    """The canonical spec string for a bound endpoint."""
    if kind == "tcp":
        host, port = address[0], address[1]
        return f"{host}:{port}"
    return str(address)


# -- control frames --------------------------------------------------------

def encode_error(message: str, *, kind: str = "protocol",
                 retry_after: float | None = None) -> bytes:
    """An ``ERROR`` frame payload (pool-side failure classification).

    ``retry_after`` rides along for ``exhausted`` errors so the
    dispatcher side can rebuild the pool's honest retry hint instead of
    inventing its own (shared semantics: repro.overload.retryafter).
    """
    fields: dict = {"error": str(message), "kind": kind}
    if retry_after is not None:
        fields["retry_after"] = float(retry_after)
    return encode_control(fields)


def decode_error(payload: bytes) -> tuple[str, str]:
    fields = decode_control(payload)
    return (str(fields.get("error", "unknown pool-side failure")),
            str(fields.get("kind", "protocol")))


def encode_control(fields: dict) -> bytes:
    return json.dumps(fields, separators=(",", ":")).encode("utf-8")


def decode_control(payload: bytes) -> dict:
    if not payload:
        return {}
    try:
        fields = json.loads(payload)
    except ValueError as exc:
        raise CgiProtocolError(
            f"malformed app-server control frame: {exc}") from exc
    if not isinstance(fields, dict):
        raise CgiProtocolError("app-server control frame is not an object")
    return fields
