"""Persistent application-server gateway (the paper's future-work path).

Section 2.3 names CGI's defining cost: the web server starts "the CGI
application as a separate process" per request — process creation,
interpreter start-up, and a fresh database connection every time.  The
paper's own Section 7 answer is the server-API model that keeps the
application resident.  This package implements that middle tier in the
FastCGI style: a dispatcher that pre-forks a pool of long-lived worker
processes, each holding warm state (parsed macros, compiled row
templates, pooled connections, a query-result cache), and speaks a small
length-prefixed frame protocol to them over a Unix socket — so a request
costs one dispatch instead of one ``exec``.

The same frame protocol also runs over TCP (:mod:`repro.appserver.remote`):
a :class:`WorkerPoolDaemon` hosts the pool behind ``--listen host:port``
and a :class:`TcpPoolDispatcher` on the web-server host dispatches to any
number of such pools via ``--connect`` — the three-tier separation the
related work argues for, with crash replacement, idempotent-only replay
and trace grafting identical across both transports.

The dispatchers implement the :class:`repro.cgi.gateway.CgiProgram`
protocol and mount in a :class:`~repro.cgi.gateway.CgiGateway` exactly
like the in-process program or :class:`~repro.cgi.process.SubprocessCgiRunner`,
so the whole HTTP stack above is unchanged.
"""

from repro.appserver.dispatcher import AppServerDispatcher
from repro.appserver.remote import TcpPoolDispatcher, WorkerPoolDaemon

__all__ = ["AppServerDispatcher", "TcpPoolDispatcher", "WorkerPoolDaemon"]
