"""TCP app-server dispatch: worker pools on other hosts.

The paper's CGI gateway and PR 3's pre-forked pool both live on the web
server's machine.  This module completes the tier separation ("Complete
Separation of the 3 Tiers — Divide and Conquer"): the worker pool moves
behind a TCP endpoint, and the edge balances requests across any number
of such pools.

Two halves, both speaking the exact frame protocol of
:mod:`repro.appserver.protocol`:

:class:`WorkerPoolDaemon`
    ``repro serve --listen host:port`` — hosts a local
    :class:`~repro.appserver.dispatcher.AppServerDispatcher` (workers,
    crash replacement, recycling, idempotent-only replay all stay
    pool-side, where the worker processes are) and serves ``REQUEST``
    frames from any number of inbound dispatcher connections.  A
    pool-side failure that the local dispatcher would *raise* (worker
    died on a non-replayable request, pool exhausted) crosses the wire
    as an ``ERROR`` frame so the remote caller re-raises the same
    exception type — remote dispatch is behaviourally identical to
    local dispatch.

:class:`TcpPoolDispatcher`
    ``repro serve --gateway appserver --connect host:port`` — a
    :class:`~repro.cgi.gateway.CgiProgram` whose ``run`` sends the
    request to a remote pool over a checked-out **channel** (one TCP
    connection; a queue of channels is the scheduler, exactly like the
    local dispatcher's worker queue).  Channels interleave across
    backends, so two ``--connect`` flags load-balance round-robin-ish
    across two pool hosts.  A channel that breaks mid-exchange is
    replaced and the request replayed once — but only when it is safe
    (GET/HEAD), the same idempotent-only rule as the local pool.

Trace grafting is transport-independent: the ``RESPONSE`` frame carries
the worker's exported span tree end-to-end (worker → daemon → edge), so
one trace id covers all three processes.
"""

from __future__ import annotations

import queue
import socket
import threading
from typing import Optional

from repro.appserver import protocol
from repro.appserver.dispatcher import AppServerDispatcher
from repro.cgi.request import CgiRequest, CgiResponse
from repro.errors import (
    CgiProtocolError,
    DeadlineExceededError,
    PoolExhaustedError,
)
from repro.obs.trace import TRACER
from repro.overload.retryafter import clamp_retry_hint

#: request methods safe to replay on a fresh channel after a break
_REPLAYABLE = frozenset({"GET", "HEAD"})


class _ChannelBroken(Exception):
    """The TCP channel itself failed mid-exchange (as opposed to a
    pool-side error that arrived intact over a healthy channel)."""


class WorkerPoolDaemon:
    """Serve a local worker pool to remote dispatchers over TCP.

    One handler thread per inbound connection; concurrency across
    connections is bounded by the pool itself (a busy pool makes
    ``run`` block, and past ``request_timeout`` the caller gets an
    ``ERROR`` frame carrying :class:`PoolExhaustedError`).
    """

    def __init__(self, worker_env: dict[str, str], *,
                 workers: int = 4,
                 host: str = "127.0.0.1", port: int = 0,
                 backlog: int = 32,
                 recycle_after: int = 500,
                 request_timeout: float = 30.0,
                 dispatcher: Optional[AppServerDispatcher] = None):
        self.pool = dispatcher or AppServerDispatcher(
            worker_env, workers=workers, recycle_after=recycle_after,
            request_timeout=request_timeout)
        self._listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._listener.bind((host, port))
        self._listener.listen(backlog)
        self.host, self.port = self._listener.getsockname()
        self._shutdown = threading.Event()
        self._lock = threading.Lock()
        self._conns: set[socket.socket] = set()
        self._requests = 0
        self._errors = 0
        self._thread = threading.Thread(
            target=self._accept_loop, name="repro-pool-daemon",
            daemon=True)
        self._thread.start()

    @property
    def endpoint(self) -> str:
        """The ``host:port`` spec remote dispatchers connect to."""
        return protocol.format_endpoint("tcp", (self.host, self.port))

    # -- lifecycle ---------------------------------------------------------

    def shutdown(self) -> None:
        if self._shutdown.is_set():
            return
        self._shutdown.set()
        self._listener.close()
        with self._lock:
            conns = list(self._conns)
        for conn in conns:
            try:
                conn.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            conn.close()
        self._thread.join(timeout=5.0)
        self.pool.shutdown()

    def __enter__(self) -> "WorkerPoolDaemon":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.shutdown()

    # -- internals ---------------------------------------------------------

    def _accept_loop(self) -> None:
        while not self._shutdown.is_set():
            try:
                conn, _addr = self._listener.accept()
            except OSError:
                return
            conn.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            with self._lock:
                self._conns.add(conn)
            threading.Thread(target=self._serve_conn, args=(conn,),
                             daemon=True).start()

    def _serve_conn(self, conn: socket.socket) -> None:
        try:
            while not self._shutdown.is_set():
                frame = protocol.recv_frame(conn)
                if frame is None:
                    return
                frame_type, payload = frame
                if frame_type == protocol.FRAME_SHUTDOWN:
                    return
                if frame_type == protocol.FRAME_PING:
                    stats = dict(self.pool.stats())
                    with self._lock:
                        stats["daemon_requests"] = self._requests
                        stats["daemon_errors"] = self._errors
                    protocol.send_frame(conn, protocol.FRAME_PONG,
                                        protocol.encode_control(stats))
                    continue
                if frame_type != protocol.FRAME_REQUEST:
                    protocol.send_frame(
                        conn, protocol.FRAME_ERROR,
                        protocol.encode_error(
                            f"unexpected frame type {frame_type}"))
                    return
                self._serve_request(conn, payload)
        except (OSError, CgiProtocolError):
            pass  # peer went away; its requests are its problem
        finally:
            with self._lock:
                self._conns.discard(conn)
            conn.close()

    def _serve_request(self, conn: socket.socket, payload: bytes) -> None:
        request = protocol.decode_request(payload)
        with self._lock:
            self._requests += 1
        try:
            response = self.pool.run(request)
        except PoolExhaustedError as exc:
            with self._lock:
                self._errors += 1
            protocol.send_frame(
                conn, protocol.FRAME_ERROR,
                protocol.encode_error(
                    str(exc), kind="exhausted",
                    retry_after=getattr(exc, "retry_after", None)))
            return
        except CgiProtocolError as exc:
            # The local pool already applied its idempotent-only replay;
            # reaching here means the request is lost for real (e.g. a
            # POST whose worker died).  Ship the same failure across.
            with self._lock:
                self._errors += 1
            protocol.send_frame(conn, protocol.FRAME_ERROR,
                                protocol.encode_error(str(exc)))
            return
        # Forward the worker's span tree untouched; the edge-side
        # dispatcher grafts it so the trace id survives all three hops.
        protocol.send_frame(conn, protocol.FRAME_RESPONSE,
                            protocol.encode_response(
                                response, trace=response.trace))


class _Channel:
    """One live TCP connection to a pool backend."""

    __slots__ = ("index", "backend", "conn", "served")

    def __init__(self, index: int, backend: str, conn: socket.socket):
        self.index = index
        self.backend = backend
        self.conn = conn
        self.served = 0


class TcpPoolDispatcher:
    """Dispatch CGI requests to remote worker pools over TCP.

    ``backends`` are ``host:port`` specs; ``channels`` TCP connections
    are opened in total, interleaved across backends so checkout order
    balances the load.  Implements the ``CgiProgram`` protocol and the
    same observability surface (:meth:`stats`, :meth:`health_check`) as
    the local :class:`~repro.appserver.dispatcher.AppServerDispatcher`,
    so ``repro serve`` mounts either interchangeably.
    """

    def __init__(self, backends: list[str] | str, *,
                 channels: int = 4,
                 request_timeout: float = 30.0,
                 connect_timeout: float = 10.0):
        if isinstance(backends, str):
            backends = [backends]
        if not backends:
            raise ValueError("at least one backend endpoint is required")
        if channels < 1:
            raise ValueError("channels must be at least 1")
        self.backends = list(backends)
        self.request_timeout = request_timeout
        self.connect_timeout = connect_timeout
        self._idle: "queue.Queue[_Channel]" = queue.Queue()
        self._lock = threading.Lock()
        self._closed = False
        self._live: dict[int, _Channel] = {}
        self._channel_requests = 0
        self._reconnects = 0
        self._replays = 0
        self._busy_timeouts = 0
        try:
            for index in range(channels):
                backend = self.backends[index % len(self.backends)]
                self._idle.put(self._open(index, backend))
        except BaseException:
            self.shutdown()
            raise
        #: total remote worker processes behind this dispatcher, summed
        #: across distinct backends (parity with the local pool's
        #: ``pool_size``).
        self.pool_size = self._remote_pool_size()

    # -- CgiProgram --------------------------------------------------------

    def run(self, request: CgiRequest) -> CgiResponse:
        deadline = getattr(request, "deadline", None)
        channel = self._checkout(deadline)
        try:
            response = self._exchange(channel, request)
        except _ChannelBroken as exc:
            # The channel broke mid-exchange: the daemon (or the network
            # between us) went away.  Replace the channel; replay only
            # when the request cannot repeat a side effect.
            self._replace(channel)
            method = request.environ.request_method.upper()
            if method not in _REPLAYABLE:
                raise CgiProtocolError(
                    f"app-server channel to {channel.backend} broke "
                    f"mid-request: {exc}") from exc
            with self._lock:
                self._replays += 1
            channel = self._checkout(deadline)
            try:
                response = self._exchange(channel, request)
            except _ChannelBroken as again:
                self._replace(channel)
                raise CgiProtocolError(
                    "app-server channel broke on the replay as well: "
                    f"{again}") from again
            except BaseException:
                self._checkin(channel)
                raise
        except BaseException:
            # A pool-side failure (ERROR frame) travelled over a
            # perfectly healthy channel: re-raise it, keep the channel.
            self._checkin(channel)
            raise
        self._checkin(channel)
        return response

    # -- observability -----------------------------------------------------

    def stats(self) -> dict[str, int]:
        """Remote pool counters merged key-wise across backends, plus
        the local channel counters (``channel_*`` keys)."""
        merged: dict[str, int] = {}
        for backend in self.backends:
            for key, value in self._backend_stats(backend).items():
                if isinstance(value, (int, float)):
                    merged[key] = merged.get(key, 0) + value
        with self._lock:
            merged["channel_requests"] = self._channel_requests
            merged["channel_reconnects"] = self._reconnects
            merged["channel_replays"] = self._replays
            merged["busy_timeouts"] = merged.get("busy_timeouts", 0) \
                + self._busy_timeouts
            merged["channels"] = len(self._live)
        return merged

    def health_check(self) -> dict[int, bool]:
        """Ping every idle channel; dead ones are replaced."""
        results: dict[int, bool] = {}
        checked: list[_Channel] = []
        while True:
            try:
                channel = self._idle.get_nowait()
            except queue.Empty:
                break
            try:
                protocol.send_frame(channel.conn, protocol.FRAME_PING)
                frame = protocol.recv_frame(channel.conn)
                if frame is None or frame[0] != protocol.FRAME_PONG:
                    raise CgiProtocolError("no PONG from pool daemon")
            except (OSError, CgiProtocolError):
                results[channel.index] = False
                self._replace(channel)
            else:
                results[channel.index] = True
                checked.append(channel)
        for channel in checked:
            self._idle.put(channel)
        return results

    # -- lifecycle ---------------------------------------------------------

    def shutdown(self) -> None:
        with self._lock:
            if self._closed:
                return
            self._closed = True
            channels = list(self._live.values())
            self._live.clear()
        for channel in channels:
            try:
                protocol.send_frame(channel.conn, protocol.FRAME_SHUTDOWN)
            except OSError:
                pass
            try:
                channel.conn.close()
            except OSError:
                pass

    def __enter__(self) -> "TcpPoolDispatcher":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.shutdown()

    # -- internals ---------------------------------------------------------

    def _open(self, index: int, backend: str) -> _Channel:
        try:
            conn = protocol.connect_endpoint(
                backend, timeout=self.connect_timeout)
        except OSError as exc:
            raise CgiProtocolError(
                f"cannot reach app-server pool at {backend}: "
                f"{exc}") from exc
        conn.settimeout(self.request_timeout)
        channel = _Channel(index, backend, conn)
        with self._lock:
            self._live[index] = channel
        return channel

    def _checkout(self, deadline=None) -> _Channel:
        if self._closed:
            raise CgiProtocolError(
                "app-server TCP dispatcher is shut down")
        # Same deadline-capped wait as the local pool: spending a spent
        # budget queueing for a channel is dead work.
        timeout = self.request_timeout
        if deadline is not None:
            if deadline.expired:
                raise DeadlineExceededError(
                    "request deadline expired before a channel was free")
            timeout = min(timeout, deadline.remaining())
        try:
            return self._idle.get(timeout=timeout)
        except queue.Empty:
            with self._lock:
                self._busy_timeouts += 1
            if deadline is not None and deadline.expired:
                raise DeadlineExceededError(
                    "request deadline expired waiting for an "
                    "app-server channel") from None
            raise PoolExhaustedError(
                f"all channels to {', '.join(self.backends)} stayed "
                f"busy for {timeout:.3g}s") from None

    def _checkin(self, channel: _Channel) -> None:
        channel.served += 1
        with self._lock:
            self._channel_requests += 1
        self._idle.put(channel)

    def _exchange(self, channel: _Channel,
                  request: CgiRequest) -> CgiResponse:
        """One REQUEST→RESPONSE round trip on a checked-out channel.

        Transport trouble raises :class:`_ChannelBroken` (replace the
        channel, maybe replay); an ``ERROR`` frame re-raises the
        pool-side exception as-is — the channel stays healthy.
        """
        with TRACER.span("appserver.dispatch") as span:
            span.set("backend", channel.backend)
            span.set("channel", channel.index)
            try:
                protocol.send_frame(channel.conn, protocol.FRAME_REQUEST,
                                    protocol.encode_request(request))
                frame = protocol.recv_frame(channel.conn)
            except (OSError, CgiProtocolError) as exc:
                raise _ChannelBroken(str(exc)) from exc
            if frame is None:
                raise _ChannelBroken(
                    "pool daemon closed the channel instead of "
                    "responding")
            frame_type, payload = frame
            if frame_type == protocol.FRAME_ERROR:
                raise _pool_error(payload)
            if frame_type != protocol.FRAME_RESPONSE:
                raise _ChannelBroken(
                    f"expected a RESPONSE frame, got type {frame_type}")
            try:
                response = protocol.decode_response(payload)
            except CgiProtocolError as exc:
                raise _ChannelBroken(str(exc)) from exc
            if response.trace is not None:
                TRACER.graft(response.trace)
            return response

    def _replace(self, channel: _Channel) -> None:
        try:
            channel.conn.close()
        except OSError:
            pass
        with self._lock:
            self._live.pop(channel.index, None)
            self._reconnects += 1
            if self._closed:
                return
        # Prefer the channel's own backend; fall back to the others so
        # one dead pool host degrades capacity instead of pinning dead
        # channels.
        order = [channel.backend] + [b for b in self.backends
                                     if b != channel.backend]
        for backend in order:
            try:
                self._idle.put(self._open(channel.index, backend))
                return
            except CgiProtocolError:
                continue
        # Every backend refused; the pool runs one channel short.  The
        # next health_check (or break) tries again.

    def _backend_stats(self, backend: str) -> dict:
        """One PING round-trip on a fresh connection (stats are rare)."""
        try:
            conn = protocol.connect_endpoint(
                backend, timeout=self.connect_timeout)
        except OSError:
            return {}
        try:
            conn.settimeout(self.request_timeout)
            protocol.send_frame(conn, protocol.FRAME_PING)
            frame = protocol.recv_frame(conn)
            if frame is None or frame[0] != protocol.FRAME_PONG:
                return {}
            return protocol.decode_control(frame[1])
        except (OSError, CgiProtocolError):
            return {}
        finally:
            conn.close()

    def _remote_pool_size(self) -> int:
        total = 0
        for backend in sorted(set(self.backends)):
            stats = self._backend_stats(backend)
            total += int(stats.get("workers", 0) or 0)
        return total


def _pool_error(payload: bytes) -> Exception:
    """Rebuild the pool-side exception an ``ERROR`` frame carries."""
    fields = protocol.decode_control(payload)
    message = str(fields.get("error", "unknown pool-side failure"))
    if str(fields.get("kind", "protocol")) == "exhausted":
        hint = fields.get("retry_after")
        return PoolExhaustedError(
            message, retry_after=clamp_retry_hint(
                float(hint) if hint is not None else None))
    return CgiProtocolError(message)
