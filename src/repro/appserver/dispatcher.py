"""The app-server dispatcher: pre-forked workers behind ``CgiProgram``.

:class:`AppServerDispatcher` owns a rendezvous listening socket (Unix
by default, loopback TCP with ``transport="tcp"``) and a pool of
worker processes (:mod:`repro.appserver.worker`).  Its :meth:`run`
implements the :class:`repro.cgi.gateway.CgiProgram` protocol, so the
whole web stack mounts it exactly like the in-process program or the
process-per-request :class:`~repro.cgi.process.SubprocessCgiRunner` —
the three execution models of the gateway-comparison bench differ only
in what sits behind ``gateway.install``.

Worker lifecycle:

* **spawn** — workers are pre-forked at construction; each connects
  back over the Unix socket and announces itself with a ``HELLO``.
* **recycle** — after ``recycle_after`` requests a worker is drained
  and replaced, the classic leak hygiene of pre-fork servers.
* **crash** — a worker dying mid-request is detected by the broken
  frame stream, replaced immediately, and the request is retried once
  on a fresh worker when it is safe to replay (GET/HEAD); other
  in-flight requests ride their own workers and never notice.
* **drain** — :meth:`shutdown` stops handing out workers, tells each
  one to finish and exit, and reaps stragglers.

Concurrency is worker-granular: checked-out workers are exclusively
owned by one request thread (a :class:`queue.Queue` of idle workers is
the scheduler), so no frame interleaving can occur.
"""

from __future__ import annotations

import os
import queue
import socket
import subprocess
import sys
import tempfile
import threading
from pathlib import Path
from typing import Optional

import repro
from repro.appserver import protocol
from repro.cgi.request import CgiRequest, CgiResponse
from repro.errors import (
    CgiProtocolError,
    DeadlineExceededError,
    PoolExhaustedError,
)
from repro.obs.trace import TRACER

#: request methods safe to replay on a fresh worker after a crash
_REPLAYABLE = frozenset({"GET", "HEAD"})


class _Worker:
    """One live worker process and its dispatcher-side connection."""

    __slots__ = ("slot", "proc", "conn", "served")

    def __init__(self, slot: int, proc: subprocess.Popen,
                 conn: socket.socket):
        self.slot = slot
        self.proc = proc
        self.conn = conn
        self.served = 0  # requests served by this incarnation


class AppServerDispatcher:
    """Dispatches CGI requests to a pool of persistent worker processes.

    ``worker_env`` carries the application configuration the workers
    read (``REPRO_MACRO_DIR``, ``REPRO_DATABASE_<NAME>``, and friends —
    see :mod:`repro.cgi.db2www_main`).  Everything else is pool tuning.
    """

    def __init__(self, worker_env: dict[str, str], *,
                 workers: int = 4,
                 recycle_after: int = 500,
                 request_timeout: float = 30.0,
                 spawn_timeout: float = 20.0,
                 argv: Optional[list[str]] = None,
                 transport: str = "unix"):
        if workers < 1:
            raise ValueError("workers must be at least 1")
        if recycle_after < 1:
            raise ValueError("recycle_after must be at least 1")
        if transport not in ("unix", "tcp"):
            raise ValueError(f"unknown transport {transport!r}")
        self.worker_env = dict(worker_env)
        self.pool_size = workers
        self.recycle_after = recycle_after
        self.request_timeout = request_timeout
        self.spawn_timeout = spawn_timeout
        self.transport = transport
        self.argv = argv or [sys.executable, "-m",
                             "repro.appserver.worker"]
        self._dir = None
        if transport == "tcp":
            # Worker rendezvous over loopback TCP: the same frame
            # protocol, no filesystem artifact.  (Workers still spawn
            # locally; cross-host pools are the daemon's job — see
            # repro.appserver.remote.)
            self._listener = socket.socket(socket.AF_INET,
                                           socket.SOCK_STREAM)
            self._listener.bind(("127.0.0.1", 0))
            self.socket_path = protocol.format_endpoint(
                "tcp", self._listener.getsockname())
        else:
            self._dir = tempfile.mkdtemp(prefix="repro-appserver-")
            self.socket_path = os.path.join(self._dir, "dispatch.sock")
            self._listener = socket.socket(socket.AF_UNIX,
                                           socket.SOCK_STREAM)
            self._listener.bind(self.socket_path)
        self._listener.listen(workers * 2)
        self._idle: "queue.Queue[_Worker]" = queue.Queue()
        self._lock = threading.Lock()       # registry + counters
        #: serialises Popen+accept+HELLO so concurrent crash
        #: replacements cannot cross-pair connections
        self._spawn_lock = threading.Lock()
        self._closed = False
        self._live: dict[int, _Worker] = {}
        self._slot_requests = {i: 0 for i in range(workers)}
        self._slot_recycles = {i: 0 for i in range(workers)}
        self._slot_crashes = {i: 0 for i in range(workers)}
        self._crash_retries = 0
        self._busy_timeouts = 0
        try:
            for slot in range(workers):
                self._idle.put(self._spawn(slot))
        except BaseException:
            self.shutdown()
            raise

    # -- CgiProgram --------------------------------------------------------

    def run(self, request: CgiRequest) -> CgiResponse:
        deadline = getattr(request, "deadline", None)
        worker = self._checkout(deadline)
        try:
            response = self._dispatch_on(worker, request)
        except (OSError, CgiProtocolError) as exc:
            # The frame stream broke: the worker crashed (or hung past
            # the timeout) mid-request.  Replace it; other in-flight
            # requests own other workers and are unaffected.
            self._replace_crashed(worker)
            method = request.environ.request_method.upper()
            if method not in _REPLAYABLE:
                raise CgiProtocolError(
                    f"app-server worker died mid-request: {exc}") from exc
            with self._lock:
                self._crash_retries += 1
            worker = self._checkout(deadline)
            try:
                response = self._dispatch_on(worker, request)
            except (OSError, CgiProtocolError) as again:
                self._replace_crashed(worker)
                raise CgiProtocolError(
                    "app-server worker died on the replay as well: "
                    f"{again}") from again
        self._checkin(worker)
        return response

    # -- observability -----------------------------------------------------

    def stats(self) -> dict[str, int]:
        """Aggregate and per-worker counters (flat, log-friendly keys)."""
        with self._lock:
            stats = {
                "workers": len(self._live),
                "requests": sum(self._slot_requests.values()),
                "recycles": sum(self._slot_recycles.values()),
                "crashes": sum(self._slot_crashes.values()),
                "crash_retries": self._crash_retries,
                "busy_timeouts": self._busy_timeouts,
            }
            for slot in sorted(self._slot_requests):
                stats[f"worker_{slot}_requests"] = \
                    self._slot_requests[slot]
                stats[f"worker_{slot}_recycles"] = \
                    self._slot_recycles[slot]
                stats[f"worker_{slot}_crashes"] = \
                    self._slot_crashes[slot]
        return stats

    def health_check(self) -> dict[int, bool]:
        """Ping every idle worker; dead ones are replaced.

        Returns slot → alive-before-check.  Busy workers are skipped
        (their liveness is proven by the request they are serving).
        """
        results: dict[int, bool] = {}
        checked: list[_Worker] = []
        while True:
            try:
                worker = self._idle.get_nowait()
            except queue.Empty:
                break
            try:
                protocol.send_frame(worker.conn, protocol.FRAME_PING)
                frame = protocol.recv_frame(worker.conn)
                if frame is None or frame[0] != protocol.FRAME_PONG:
                    raise CgiProtocolError("no PONG from worker")
            except (OSError, CgiProtocolError):
                results[worker.slot] = False
                self._replace_crashed(worker)
            else:
                results[worker.slot] = True
                checked.append(worker)
        for worker in checked:
            self._idle.put(worker)
        return results

    # -- lifecycle ---------------------------------------------------------

    def shutdown(self, *, drain_timeout: float = 5.0) -> None:
        """Drain the pool: no new checkouts, workers finish and exit."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            remaining = len(self._live)
        # Idle workers (and busy ones as they come back) get a graceful
        # SHUTDOWN; anything that does not return in time is reaped.
        collected = 0
        while collected < remaining:
            try:
                worker = self._idle.get(timeout=drain_timeout)
            except queue.Empty:
                break
            self._retire(worker, graceful=True)
            collected += 1
        with self._lock:
            stragglers = list(self._live.values())
            self._live.clear()
        for worker in stragglers:
            self._kill(worker)
        self._listener.close()
        if self._dir is not None:
            try:
                os.unlink(self.socket_path)
            except OSError:
                pass
            try:
                os.rmdir(self._dir)
            except OSError:
                pass

    def __enter__(self) -> "AppServerDispatcher":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.shutdown()

    # -- internals ---------------------------------------------------------

    def _spawn(self, slot: int) -> _Worker:
        with self._spawn_lock:
            return self._spawn_locked(slot)

    def _spawn_locked(self, slot: int) -> _Worker:
        env = dict(os.environ)
        env.update(self.worker_env)
        env["REPRO_APPSERVER_SOCKET"] = self.socket_path
        env["REPRO_APPSERVER_WORKER_ID"] = str(slot)
        # Workers must import this package regardless of how the
        # dispatcher process found it.
        src_dir = str(Path(repro.__file__).resolve().parent.parent)
        existing = env.get("PYTHONPATH", "")
        if src_dir not in existing.split(os.pathsep):
            env["PYTHONPATH"] = (src_dir + os.pathsep + existing
                                 if existing else src_dir)
        proc = subprocess.Popen(
            self.argv, env=env, stdin=subprocess.DEVNULL,
            stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL)
        self._listener.settimeout(self.spawn_timeout)
        try:
            conn, _ = self._listener.accept()
        except (OSError, socket.timeout) as exc:
            proc.kill()
            proc.wait()
            raise CgiProtocolError(
                f"app-server worker {slot} never connected "
                f"(within {self.spawn_timeout:.3g}s)") from exc
        if self.transport == "tcp":
            conn.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        conn.settimeout(self.request_timeout)
        frame = protocol.recv_frame(conn)
        if frame is None or frame[0] != protocol.FRAME_HELLO:
            conn.close()
            proc.kill()
            proc.wait()
            raise CgiProtocolError(
                f"app-server worker {slot} sent no HELLO")
        hello = protocol.decode_control(frame[1])
        if hello.get("worker_id") != slot:
            conn.close()
            proc.kill()
            proc.wait()
            raise CgiProtocolError(
                f"app-server worker announced slot "
                f"{hello.get('worker_id')!r}, expected {slot}")
        worker = _Worker(slot, proc, conn)
        with self._lock:
            self._live[slot] = worker
        return worker

    def _checkout(self, deadline=None) -> _Worker:
        if self._closed:
            raise CgiProtocolError("app-server dispatcher is shut down")
        # The wait for a worker is bounded by the request's remaining
        # deadline budget: a request with 50 ms left must not sit 30 s
        # in the checkout queue doing dead work.
        timeout = self.request_timeout
        if deadline is not None:
            if deadline.expired:
                raise DeadlineExceededError(
                    "request deadline expired before a worker was free")
            timeout = min(timeout, deadline.remaining())
        try:
            return self._idle.get(timeout=timeout)
        except queue.Empty:
            with self._lock:
                self._busy_timeouts += 1
            if deadline is not None and deadline.expired:
                raise DeadlineExceededError(
                    "request deadline expired waiting for an "
                    "app-server worker") from None
            raise PoolExhaustedError(
                f"all {self.pool_size} app-server workers stayed busy "
                f"for {timeout:.3g}s") from None

    def _checkin(self, worker: _Worker) -> None:
        worker.served += 1
        with self._lock:
            self._slot_requests[worker.slot] += 1
        if worker.served >= self.recycle_after and not self._closed:
            self._recycle(worker)
        else:
            self._idle.put(worker)

    def _dispatch_on(self, worker: _Worker,
                     request: CgiRequest) -> CgiResponse:
        with TRACER.span("appserver.dispatch") as span:
            span.set("slot", worker.slot)
            protocol.send_frame(worker.conn, protocol.FRAME_REQUEST,
                                protocol.encode_request(request))
            frame = protocol.recv_frame(worker.conn)
            if frame is None:
                raise CgiProtocolError(
                    "worker closed the connection instead of responding")
            frame_type, payload = frame
            if frame_type != protocol.FRAME_RESPONSE:
                raise CgiProtocolError(
                    f"expected a RESPONSE frame, got type {frame_type}")
            response = protocol.decode_response(payload)
            if response.trace is not None:
                # Stitch the worker-side spans into this request's
                # trace; their ids match (the frame carried the id).
                TRACER.graft(response.trace)
            return response

    def _recycle(self, worker: _Worker) -> None:
        """Planned replacement after ``recycle_after`` requests."""
        slot = worker.slot
        self._retire(worker, graceful=True)
        with self._lock:
            self._slot_recycles[slot] += 1
        self._respawn(slot)

    def _replace_crashed(self, worker: _Worker) -> None:
        slot = worker.slot
        self._kill(worker)
        with self._lock:
            self._slot_crashes[slot] += 1
            self._live.pop(slot, None)
        self._respawn(slot)

    def _respawn(self, slot: int) -> None:
        if self._closed:
            return
        try:
            self._idle.put(self._spawn(slot))
        except CgiProtocolError:
            # The replacement itself failed to come up; the pool runs
            # one short.  The next health_check (or crash replacement)
            # will try again — and the error is visible in `workers`.
            pass

    def _retire(self, worker: _Worker, *, graceful: bool) -> None:
        with self._lock:
            self._live.pop(worker.slot, None)
        if graceful:
            try:
                protocol.send_frame(worker.conn, protocol.FRAME_SHUTDOWN)
            except OSError:
                pass
        try:
            worker.conn.close()
        except OSError:
            pass
        try:
            worker.proc.wait(timeout=2.0)
        except subprocess.TimeoutExpired:
            worker.proc.kill()
            worker.proc.wait()

    def _kill(self, worker: _Worker) -> None:
        try:
            worker.conn.close()
        except OSError:
            pass
        if worker.proc.poll() is None:
            worker.proc.kill()
        try:
            worker.proc.wait(timeout=2.0)
        except subprocess.TimeoutExpired:
            pass
