"""Programmatic HTML generation.

The baseline gateways of Section 6 (WDB's auto-generated forms, GSQL's
rendered proc files, the PL/SQL ``htp`` package) all generate markup from
code — which is precisely the paper's argument *against* them.  This
module gives those baselines a small, correct generator so the comparison
is fair: escaping is automatic, attribute order is stable, void elements
render without end tags.
"""

from __future__ import annotations

from repro.html.entities import escape_attribute, escape_html
from repro.html.parser import VOID_ELEMENTS


def attributes(**attrs: str | bool | int | None) -> str:
    """Render keyword arguments as an attribute string.

    ``None`` skips the attribute; ``True`` renders a bare attribute
    (``CHECKED``); ``False`` skips it.  A trailing underscore in a name is
    stripped so reserved words work (``type_="text"``); other underscores
    become dashes.
    """
    parts: list[str] = []
    for raw_name, value in attrs.items():
        if value is None or value is False:
            continue
        name = raw_name.rstrip("_").replace("_", "-").upper()
        if value is True:
            parts.append(name)
        else:
            parts.append(f'{name}="{escape_attribute(str(value))}"')
    return (" " + " ".join(parts)) if parts else ""


def element(tag: str, *children: str, **attrs: str | bool | int | None) -> str:
    """Render an element with already-safe child markup.

    Children are assumed to be markup (output of :func:`element` or
    :func:`text`); use :func:`text` to bring raw data in safely.
    """
    name = tag.upper()
    if tag.lower() in VOID_ELEMENTS:
        return f"<{name}{attributes(**attrs)}>"
    inner = "".join(children)
    return f"<{name}{attributes(**attrs)}>{inner}</{name}>"


def text(data: str) -> str:
    """Escape raw data for inclusion as page text."""
    return escape_html(data)


def page(title: str, *body: str) -> str:
    """A complete minimal 1996 page."""
    return (
        "<HTML><HEAD><TITLE>" + escape_html(title) + "</TITLE></HEAD>\n"
        "<BODY>\n" + "".join(body) + "\n</BODY></HTML>\n"
    )


class HtmlWriter:
    """An append-style writer for generators that build pages in steps.

    This is the shape of Oracle's ``htp`` package (the PL/SQL baseline):
    ``writer.print(...)`` accumulates lines into the CGI output stream.
    """

    def __init__(self) -> None:
        self._parts: list[str] = []

    def print(self, markup: str = "") -> None:  # noqa: A003 - htp.print
        self._parts.append(markup)
        self._parts.append("\n")

    def print_text(self, data: str) -> None:
        self.print(escape_html(data))

    def getvalue(self) -> str:
        return "".join(self._parts)
