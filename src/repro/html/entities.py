"""HTML character entities: escaping and unescaping.

The substrate implements the entity set a 1996 browser understood (the
HTML 2.0 named entities for markup-significant characters plus the Latin-1
range) and numeric character references.  ``escape_html`` is used wherever
the library itself generates markup around data values — the default
report table, error messages, baseline gateways — and by applications that
opt into value escaping (see :mod:`repro.security`).
"""

from __future__ import annotations

import re

#: Minimal escaping applied to text content and attribute values.
_ESCAPE_MAP = {
    "&": "&amp;",
    "<": "&lt;",
    ">": "&gt;",
    '"': "&quot;",
}

#: Named entities recognised when parsing (HTML 2.0 core set plus the
#: handful of Latin-1 names that show up in period pages).
NAMED_ENTITIES = {
    "amp": "&",
    "lt": "<",
    "gt": ">",
    "quot": '"',
    "apos": "'",
    "nbsp": " ",
    "copy": "©",
    "reg": "®",
    "eacute": "é",
    "egrave": "è",
    "agrave": "à",
    "uuml": "ü",
    "ouml": "ö",
    "auml": "ä",
    "ccedil": "ç",
    "ntilde": "ñ",
    "szlig": "ß",
    "middot": "·",
}

_ENTITY_RE = re.compile(
    r"&(?:#(?P<dec>[0-9]{1,7})|#[xX](?P<hex>[0-9A-Fa-f]{1,6})"
    r"|(?P<named>[A-Za-z][A-Za-z0-9]{1,31}));"
)


def escape_html(text: str) -> str:
    """Escape text for safe inclusion in HTML content or attributes."""
    out = text.replace("&", "&amp;")
    out = out.replace("<", "&lt;").replace(">", "&gt;")
    return out.replace('"', "&quot;")


def escape_attribute(text: str) -> str:
    """Escape text for a double-quoted attribute value."""
    return escape_html(text)


def _replace_entity(match: re.Match[str]) -> str:
    dec = match.group("dec")
    if dec is not None:
        code = int(dec)
        return chr(code) if code <= 0x10FFFF else match.group(0)
    hexa = match.group("hex")
    if hexa is not None:
        code = int(hexa, 16)
        return chr(code) if code <= 0x10FFFF else match.group(0)
    named = match.group("named")
    replacement = NAMED_ENTITIES.get(named)
    if replacement is None:
        # Unknown entity: 1996 browsers displayed the raw text.
        return match.group(0)
    return replacement


def unescape_html(text: str) -> str:
    """Resolve character references the way a lenient browser does.

    Unknown named entities and bare ampersands are left alone, matching
    period browser behaviour (and making unescape total on arbitrary
    input).
    """
    return _ENTITY_RE.sub(_replace_entity, text)
