"""HTML tokenizer: the lexical half of the Web-client substrate.

Splits markup into start tags, end tags, text, comments and declarations,
with the leniency real 1996 pages demanded: unquoted attribute values,
missing quotes, stray ``<`` characters, attributes without values.  Tag
and attribute names are normalised to lower case (HTML is
case-insensitive; the paper's markup is upper-case throughout).
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Iterator, Union

_TAG_NAME_RE = re.compile(r"[A-Za-z][A-Za-z0-9]*")
_ATTR_RE = re.compile(
    r"\s*(?P<name>[A-Za-z_:][-A-Za-z0-9_:.]*)"
    r"(?:\s*=\s*(?P<quoted>\"[^\"]*\"|'[^']*'|[^\s>]*))?"
)


@dataclass(frozen=True)
class StartTag:
    name: str
    attrs: tuple[tuple[str, str], ...] = field(default_factory=tuple)
    self_closing: bool = False

    def get(self, attr: str, default: str = "") -> str:
        folded = attr.lower()
        for key, value in self.attrs:
            if key == folded:
                return value
        return default

    def has(self, attr: str) -> bool:
        folded = attr.lower()
        return any(key == folded for key, _ in self.attrs)


@dataclass(frozen=True)
class EndTag:
    name: str


@dataclass(frozen=True)
class Text:
    data: str


@dataclass(frozen=True)
class Comment:
    data: str


Token = Union[StartTag, EndTag, Text, Comment]


def tokenize(markup: str) -> Iterator[Token]:
    """Tokenize HTML markup, never raising on malformed input.

    A ``<`` that does not begin a recognisable tag is emitted as text,
    matching the error recovery of period browsers.
    """
    pos = 0
    n = len(markup)
    while pos < n:
        lt = markup.find("<", pos)
        if lt < 0:
            yield Text(markup[pos:])
            return
        if lt > pos:
            yield Text(markup[pos:lt])
        if markup.startswith("<!--", lt):
            end = markup.find("-->", lt + 4)
            if end < 0:
                yield Comment(markup[lt + 4:])
                return
            yield Comment(markup[lt + 4:end])
            pos = end + 3
            continue
        if markup.startswith("<!", lt):
            end = markup.find(">", lt)
            if end < 0:
                yield Text(markup[lt:])
                return
            yield Comment(markup[lt + 2:end])
            pos = end + 1
            continue
        if markup.startswith("</", lt):
            match = _TAG_NAME_RE.match(markup, lt + 2)
            if match is None:
                yield Text("</")
                pos = lt + 2
                continue
            end = markup.find(">", match.end())
            if end < 0:
                yield EndTag(match.group(0).lower())
                return
            yield EndTag(match.group(0).lower())
            pos = end + 1
            continue
        match = _TAG_NAME_RE.match(markup, lt + 1)
        if match is None:
            yield Text("<")
            pos = lt + 1
            continue
        name = match.group(0).lower()
        tag_end, attrs, self_closing = _scan_attributes(markup, match.end())
        yield StartTag(name=name, attrs=tuple(attrs),
                       self_closing=self_closing)
        pos = tag_end
    return


def _scan_attributes(markup: str,
                     pos: int) -> tuple[int, list[tuple[str, str]], bool]:
    """Scan attributes up to the closing ``>``.

    Returns ``(position_after_gt, attrs, self_closing)``.  Attribute
    values keep their exact text with surrounding quotes stripped;
    valueless attributes (``CHECKED``, ``MULTIPLE``, ``SELECTED``) get the
    empty string.
    """
    from repro.html.entities import unescape_html

    attrs: list[tuple[str, str]] = []
    n = len(markup)
    while pos < n:
        while pos < n and markup[pos] in " \t\r\n":
            pos += 1
        if pos >= n:
            return n, attrs, False
        if markup[pos] == ">":
            return pos + 1, attrs, False
        if markup.startswith("/>", pos):
            return pos + 2, attrs, True
        match = _ATTR_RE.match(markup, pos)
        if match is None or match.end() == pos:
            pos += 1  # skip junk character
            continue
        name = match.group("name").lower()
        raw = match.group("quoted")
        if raw is None:
            value = ""
        elif raw[:1] in ("'", '"') and raw[-1:] == raw[:1] and len(raw) >= 2:
            value = unescape_html(raw[1:-1])
        else:
            value = unescape_html(raw)
        attrs.append((name, value))
        pos = match.end()
    return n, attrs, False
