"""HTML substrate: entities, tokenizer, DOM-lite, forms, rendering.

The client-side half of the Web described in Section 2 of the paper:
markup parsing with period-browser leniency, the HTML 2.0 fill-in form
model (the paper's input-variable mechanism of Section 2.2), a text-mode
page renderer used to regenerate the screenshot figures, and a small
generator for the baseline gateways.
"""

from repro.html.builder import HtmlWriter, attributes, element, page, text
from repro.html.dom import Document, Element, TextNode
from repro.html.entities import escape_html, unescape_html
from repro.html.forms import (
    CheckboxControl,
    Form,
    FormError,
    HiddenControl,
    Option,
    RadioControl,
    ResetControl,
    SelectControl,
    SubmitControl,
    TextAreaControl,
    TextControl,
    extract_forms,
)
from repro.html.parser import parse_html
from repro.html.render import render_markup, render_text
from repro.html.tokenizer import tokenize

__all__ = [
    "CheckboxControl",
    "Document",
    "Element",
    "Form",
    "FormError",
    "HiddenControl",
    "HtmlWriter",
    "Option",
    "RadioControl",
    "ResetControl",
    "SelectControl",
    "SubmitControl",
    "TextAreaControl",
    "TextControl",
    "TextNode",
    "attributes",
    "element",
    "escape_html",
    "extract_forms",
    "page",
    "parse_html",
    "render_markup",
    "render_text",
    "text",
    "tokenize",
    "unescape_html",
]
