"""Lenient HTML tree construction — the parsing half of a 1996 browser.

Period HTML omitted most closing tags (``<P>``, ``<LI>``, ``<OPTION>``,
table cells) and browsers repaired it; the paper's own markup (Figure 2,
Appendix A) does exactly that.  The parser implements the standard repair
rules:

* *void elements* (``<INPUT>``, ``<BR>``, ...) never take children;
* elements with *optional end tags* are auto-closed when a sibling of the
  same kind (or another terminating tag) opens;
* an unmatched end tag closes the nearest open element of that name, or
  is ignored;
* everything still open at end of input is closed.
"""

from __future__ import annotations

from repro.html.dom import Document, Element, TextNode
from repro.html.tokenizer import Comment, EndTag, StartTag, Text, tokenize

#: Elements that never have content.
VOID_ELEMENTS = frozenset({
    "area", "base", "basefont", "br", "col", "hr", "img", "input",
    "isindex", "link", "meta", "param",
})

#: tag -> set of start tags that implicitly close it.
_IMPLICIT_CLOSERS: dict[str, frozenset[str]] = {
    "p": frozenset({"p", "ul", "ol", "dl", "table", "form", "h1", "h2",
                    "h3", "h4", "h5", "h6", "pre", "blockquote", "hr",
                    "div"}),
    "li": frozenset({"li"}),
    "dt": frozenset({"dt", "dd"}),
    "dd": frozenset({"dt", "dd"}),
    "option": frozenset({"option", "optgroup"}),
    "tr": frozenset({"tr"}),
    "td": frozenset({"td", "th", "tr"}),
    "th": frozenset({"td", "th", "tr"}),
    "thead": frozenset({"tbody", "tfoot"}),
    "tbody": frozenset({"tbody", "tfoot"}),
}

#: Closing these also closes any open element in the value set.
_END_ALSO_CLOSES: dict[str, frozenset[str]] = {
    "ul": frozenset({"li", "p"}),
    "ol": frozenset({"li", "p"}),
    "select": frozenset({"option"}),
    "table": frozenset({"td", "th", "tr", "thead", "tbody", "tfoot"}),
    "tr": frozenset({"td", "th"}),
    "form": frozenset({"p", "li", "option"}),
    "dl": frozenset({"dt", "dd", "p"}),
}


def parse_html(markup: str) -> Document:
    """Parse markup into a :class:`Document`; never raises."""
    document = Document()
    stack: list[Element] = [document]

    def open_element(tag: StartTag) -> None:
        _auto_close_for(stack, tag.name)
        element = Element(tag.name, list(tag.attrs))
        stack[-1].append(element)
        if tag.name not in VOID_ELEMENTS and not tag.self_closing:
            stack.append(element)

    def close_element(name: str) -> None:
        also = _END_ALSO_CLOSES.get(name, frozenset())
        # Find the nearest open element with this name.
        for i in range(len(stack) - 1, 0, -1):
            if stack[i].tag == name:
                del stack[i:]
                return
            if stack[i].tag not in also and stack[i].tag not in \
                    _IMPLICIT_CLOSERS:
                # A mismatched end tag cannot close a structural element.
                break
        # Unmatched end tag: close optional-end elements it terminates.
        while len(stack) > 1 and stack[-1].tag in also:
            stack.pop()

    for token in tokenize(markup):
        if isinstance(token, Text):
            if token.data:
                stack[-1].append(TextNode(token.data))
        elif isinstance(token, StartTag):
            open_element(token)
        elif isinstance(token, EndTag):
            close_element(token.name)
        elif isinstance(token, Comment):
            continue
    return document


def _auto_close_for(stack: list[Element], incoming: str) -> None:
    """Pop optional-end elements the incoming start tag terminates."""
    while len(stack) > 1:
        current = stack[-1].tag
        closers = _IMPLICIT_CLOSERS.get(current)
        if closers is not None and incoming in closers:
            stack.pop()
            continue
        break
