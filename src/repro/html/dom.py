"""A small document object model for parsed HTML.

Two node kinds — :class:`Element` and :class:`TextNode` — plus the search
and text-extraction operations the form machinery, the browser and the
test-suite need.  Attribute names are lower-case (normalised by the
tokenizer); lookups are therefore case-insensitive from the caller's
point of view.
"""

from __future__ import annotations

from typing import Iterator, Optional, Union

from repro.html.entities import unescape_html


class TextNode:
    """A run of character data."""

    __slots__ = ("data", "parent")

    def __init__(self, data: str, parent: Optional["Element"] = None):
        self.data = data
        self.parent = parent

    @property
    def text(self) -> str:
        return unescape_html(self.data)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"TextNode({self.data!r})"


class Element:
    """An HTML element with attributes and children."""

    __slots__ = ("tag", "attrs", "children", "parent")

    def __init__(self, tag: str,
                 attrs: Optional[list[tuple[str, str]]] = None,
                 parent: Optional["Element"] = None):
        self.tag = tag.lower()
        self.attrs: list[tuple[str, str]] = list(attrs or [])
        self.children: list[Node] = []
        self.parent = parent

    # -- attributes ---------------------------------------------------------

    def get(self, name: str, default: str = "") -> str:
        folded = name.lower()
        for key, value in self.attrs:
            if key == folded:
                return value
        return default

    def has_attr(self, name: str) -> bool:
        folded = name.lower()
        return any(key == folded for key, _ in self.attrs)

    def set(self, name: str, value: str) -> None:
        folded = name.lower()
        for i, (key, _) in enumerate(self.attrs):
            if key == folded:
                self.attrs[i] = (key, value)
                return
        self.attrs.append((folded, value))

    # -- tree ----------------------------------------------------------------

    def append(self, node: "Node") -> None:
        node.parent = self
        self.children.append(node)

    def iter(self) -> Iterator["Element"]:
        """Depth-first iteration over this element and its descendants."""
        yield self
        for child in self.children:
            if isinstance(child, Element):
                yield from child.iter()

    def find_all(self, *tags: str) -> list["Element"]:
        wanted = {t.lower() for t in tags}
        return [el for el in self.iter()
                if el.tag in wanted and el is not self]

    def find(self, *tags: str) -> Optional["Element"]:
        found = self.find_all(*tags)
        return found[0] if found else None

    def child_elements(self) -> list["Element"]:
        return [c for c in self.children if isinstance(c, Element)]

    # -- text ----------------------------------------------------------------

    def get_text(self) -> str:
        """Concatenated character data of the subtree, entity-decoded."""
        parts: list[str] = []
        self._collect_text(parts)
        return "".join(parts)

    def _collect_text(self, parts: list[str]) -> None:
        for child in self.children:
            if isinstance(child, TextNode):
                parts.append(child.text)
            else:
                child._collect_text(parts)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Element(<{self.tag}> attrs={dict(self.attrs)!r})"


Node = Union[Element, TextNode]


class Document(Element):
    """The root of a parsed page."""

    def __init__(self) -> None:
        super().__init__("#document")

    @property
    def title(self) -> str:
        title = self.find("title")
        if title is None:
            return ""
        return " ".join(title.get_text().split())
