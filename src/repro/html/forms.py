"""HTML fill-in forms: the client half of Section 2.2.

"This HTML form has INPUT and SELECT sections which are used to define
input variables for user input ... The Web client will then package the
variable values as indicated by the user's screen clicks and passes these
onto the Web server."  This module models the controls of HTML 2.0 forms
(INPUT of types text/password/checkbox/radio/hidden/submit/reset,
SELECT/OPTION with MULTIPLE, TEXTAREA) and implements the submission
algorithm that produces the ordered ``name=value`` pairs of the paper's
Figure 3.

Submission rules (HTML 2.0 / period browser behaviour):

* controls contribute in document order;
* text, password, hidden and textarea controls always contribute (a name
  is required);
* checkboxes and radio buttons contribute only when checked; a checkbox
  with no VALUE submits ``on``;
* each *selected* OPTION of a SELECT contributes one pair (multi-valued
  variables — the paper's ``DBFIELD``); in a single SELECT with no
  SELECTED attribute the first option is selected, as Netscape and Mosaic
  did;
* a submit button contributes only if it is the one clicked and has a
  name; reset buttons never contribute.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.errors import ReproError
from repro.html.dom import Document, Element


class FormError(ReproError):
    """Raised on invalid interactions with a form (unknown field etc.)."""


@dataclass
class Option:
    """One ``<OPTION>`` of a SELECT."""

    label: str
    value: str
    selected: bool = False


@dataclass
class Control:
    """Base class for form controls."""

    name: str
    kind: str = field(init=False, default="")

    def pairs(self, clicked: Optional["Control"]) -> list[tuple[str, str]]:
        raise NotImplementedError  # pragma: no cover


@dataclass
class TextControl(Control):
    value: str = ""
    password: bool = False

    def __post_init__(self) -> None:
        self.kind = "password" if self.password else "text"

    def pairs(self, clicked: Optional[Control]) -> list[tuple[str, str]]:
        if not self.name:
            return []
        return [(self.name, self.value)]


@dataclass
class HiddenControl(Control):
    value: str = ""

    def __post_init__(self) -> None:
        self.kind = "hidden"

    def pairs(self, clicked: Optional[Control]) -> list[tuple[str, str]]:
        if not self.name:
            return []
        return [(self.name, self.value)]


@dataclass
class CheckboxControl(Control):
    value: str = "on"
    checked: bool = False

    def __post_init__(self) -> None:
        self.kind = "checkbox"

    def pairs(self, clicked: Optional[Control]) -> list[tuple[str, str]]:
        if not self.name or not self.checked:
            return []
        return [(self.name, self.value)]


@dataclass
class RadioControl(Control):
    value: str = "on"
    checked: bool = False

    def __post_init__(self) -> None:
        self.kind = "radio"

    def pairs(self, clicked: Optional[Control]) -> list[tuple[str, str]]:
        if not self.name or not self.checked:
            return []
        return [(self.name, self.value)]


@dataclass
class SubmitControl(Control):
    value: str = "Submit"

    def __post_init__(self) -> None:
        self.kind = "submit"

    def pairs(self, clicked: Optional[Control]) -> list[tuple[str, str]]:
        if clicked is not self or not self.name:
            return []
        return [(self.name, self.value)]


@dataclass
class ResetControl(Control):
    value: str = "Reset"

    def __post_init__(self) -> None:
        self.kind = "reset"

    def pairs(self, clicked: Optional[Control]) -> list[tuple[str, str]]:
        return []


@dataclass
class TextAreaControl(Control):
    value: str = ""

    def __post_init__(self) -> None:
        self.kind = "textarea"

    def pairs(self, clicked: Optional[Control]) -> list[tuple[str, str]]:
        if not self.name:
            return []
        return [(self.name, self.value)]


@dataclass
class SelectControl(Control):
    options: list[Option] = field(default_factory=list)
    multiple: bool = False

    def __post_init__(self) -> None:
        self.kind = "select"

    def pairs(self, clicked: Optional[Control]) -> list[tuple[str, str]]:
        if not self.name:
            return []
        return [(self.name, opt.value) for opt in self.options
                if opt.selected]

    # -- interaction -------------------------------------------------------

    def select(self, label_or_value: str) -> None:
        option = self._find(label_or_value)
        if not self.multiple:
            for opt in self.options:
                opt.selected = False
        option.selected = True

    def deselect(self, label_or_value: str) -> None:
        self._find(label_or_value).selected = False

    def deselect_all(self) -> None:
        for opt in self.options:
            opt.selected = False

    def selected_values(self) -> list[str]:
        return [opt.value for opt in self.options if opt.selected]

    def _find(self, label_or_value: str) -> Option:
        for opt in self.options:
            if label_or_value in (opt.value, opt.label):
                return opt
        raise FormError(
            f"select {self.name!r} has no option {label_or_value!r}")


class Form:
    """One ``<FORM>`` with its controls, fillable and submittable."""

    def __init__(self, *, action: str = "", method: str = "GET",
                 controls: Optional[list[Control]] = None):
        self.action = action
        self.method = method.upper() or "GET"
        self.controls: list[Control] = list(controls or [])

    # -- lookup ----------------------------------------------------------

    def __getitem__(self, name: str) -> Control:
        control = self.get(name)
        if control is None:
            raise FormError(f"form has no control named {name!r}")
        return control

    def get(self, name: str) -> Optional[Control]:
        for control in self.controls:
            if control.name == name:
                return control
        return None

    def all(self, name: str) -> list[Control]:
        return [c for c in self.controls if c.name == name]

    def control_names(self) -> list[str]:
        seen: list[str] = []
        for control in self.controls:
            if control.name and control.name not in seen:
                seen.append(control.name)
        return seen

    def submits(self) -> list[SubmitControl]:
        return [c for c in self.controls if isinstance(c, SubmitControl)]

    # -- filling ------------------------------------------------------------

    def set(self, name: str, value: str) -> None:
        """Type ``value`` into the text/hidden/textarea control ``name``."""
        control = self[name]
        if isinstance(control, (TextControl, HiddenControl,
                                TextAreaControl)):
            control.value = value
            return
        if isinstance(control, SelectControl):
            control.select(value)
            return
        raise FormError(
            f"cannot type into {control.kind} control {name!r}")

    def check(self, name: str, value: Optional[str] = None) -> None:
        """Check a checkbox, or pick the radio button with ``value``."""
        candidates = self.all(name)
        if not candidates:
            raise FormError(f"form has no control named {name!r}")
        for control in candidates:
            if isinstance(control, CheckboxControl):
                if value is None or control.value == value:
                    control.checked = True
                    return
            if isinstance(control, RadioControl):
                if value is None or control.value == value:
                    for other in candidates:
                        if isinstance(other, RadioControl):
                            other.checked = False
                    control.checked = True
                    return
        raise FormError(
            f"no checkable control {name!r} with value {value!r}")

    def uncheck(self, name: str, value: Optional[str] = None) -> None:
        for control in self.all(name):
            if isinstance(control, (CheckboxControl, RadioControl)):
                if value is None or control.value == value:
                    control.checked = False
                    return
        raise FormError(f"no checkable control {name!r}")

    # -- submission ----------------------------------------------------------

    def submission_pairs(
            self, click: Optional[str | SubmitControl] = None
    ) -> list[tuple[str, str]]:
        """The ordered name=value pairs this form would submit.

        ``click`` selects a submit button (by name or instance); ``None``
        means the form was submitted without pressing a named button
        (Enter in a text field, or a single nameless Submit).
        """
        clicked: Optional[Control] = None
        if isinstance(click, SubmitControl):
            clicked = click
        elif isinstance(click, str):
            for control in self.submits():
                if control.name == click or control.value == click:
                    clicked = control
                    break
            if clicked is None:
                raise FormError(f"no submit button {click!r}")
        pairs: list[tuple[str, str]] = []
        for control in self.controls:
            pairs.extend(control.pairs(clicked))
        return pairs


# ---------------------------------------------------------------------------
# Extraction from a parsed document
# ---------------------------------------------------------------------------


def extract_forms(document: Document) -> list[Form]:
    """Build :class:`Form` objects from every ``<FORM>`` in a document."""
    forms = []
    for element in document.find_all("form"):
        forms.append(_build_form(element))
    return forms


def _build_form(form_el: Element) -> Form:
    controls: list[Control] = []
    for element in form_el.iter():
        if element.tag == "input":
            control = _build_input(element)
            if control is not None:
                controls.append(control)
        elif element.tag == "select":
            controls.append(_build_select(element))
        elif element.tag == "textarea":
            controls.append(TextAreaControl(
                name=element.get("name"),
                value=element.get_text()))
    return Form(action=form_el.get("action"),
                method=form_el.get("method", "GET"),
                controls=controls)


def _build_input(element: Element) -> Optional[Control]:
    input_type = element.get("type", "text").lower()
    name = element.get("name")
    value = element.get("value")
    if input_type in ("text", ""):
        return TextControl(name=name, value=value)
    if input_type == "password":
        return TextControl(name=name, value=value, password=True)
    if input_type == "hidden":
        return HiddenControl(name=name, value=value)
    # A checkbox/radio with no VALUE attribute submits "on" (HTML 2.0);
    # an explicit VALUE="" stays empty — the paper's SHOWSQL "No" radio
    # depends on submitting the null string.
    check_value = value if element.has_attr("value") else "on"
    if input_type == "checkbox":
        return CheckboxControl(
            name=name, value=check_value,
            checked=element.has_attr("checked"))
    if input_type == "radio":
        return RadioControl(
            name=name, value=check_value,
            checked=element.has_attr("checked"))
    if input_type == "submit":
        return SubmitControl(name=name, value=value or "Submit")
    if input_type == "reset":
        return ResetControl(name=name, value=value or "Reset")
    if input_type == "image":
        return SubmitControl(name=name, value=value or "")
    return None  # unknown input type: period browsers ignored it


def _build_select(element: Element) -> SelectControl:
    options: list[Option] = []
    for option_el in element.find_all("option"):
        label = " ".join(option_el.get_text().split())
        value = option_el.get("value") if option_el.has_attr("value") \
            else label
        options.append(Option(label=label, value=value,
                              selected=option_el.has_attr("selected")))
    multiple = element.has_attr("multiple")
    if options and not multiple and not any(o.selected for o in options):
        options[0].selected = True
    return SelectControl(name=element.get("name"), options=options,
                         multiple=multiple)
