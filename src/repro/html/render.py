"""Text-mode page rendering: "appropriate display operations".

Section 2.1 step 4: "The Web client parses the Web page received from the
server and performs appropriate display operations displaying the page to
the user."  This renderer produces a terminal approximation of that
display — headings underlined, lists bulleted, form controls drawn as
``[x]``/``( )``/text boxes — which is how the benchmark harness
regenerates the paper's screenshot figures (Figures 3, 7 and 8) as
comparable artifacts.
"""

from __future__ import annotations

import re

from repro.html.dom import Document, Element, Node, TextNode

_WS_RE = re.compile(r"\s+")

#: Elements rendered on their own line(s).
_BLOCK_TAGS = frozenset({
    "p", "div", "ul", "ol", "li", "dl", "dt", "dd", "table", "tr",
    "form", "blockquote", "pre", "address", "center",
    "h1", "h2", "h3", "h4", "h5", "h6",
})

_HEADING_UNDERLINE = {"h1": "=", "h2": "-", "h3": "-"}

#: Content that never renders.
_SKIP_TAGS = frozenset({"head", "script", "style", "title"})


def render_text(document: Document, *, width: int = 72) -> str:
    """Render a parsed page to display text."""
    renderer = _Renderer(width)
    renderer.walk(document)
    return renderer.finish()


def render_markup(markup: str, *, width: int = 72) -> str:
    """Parse-and-render convenience used by the browser and figures."""
    from repro.html.parser import parse_html
    return render_text(parse_html(markup), width=width)


class _Renderer:
    def __init__(self, width: int):
        self.width = width
        self.lines: list[str] = []
        self.current: list[str] = []
        self.list_depth = 0

    # -- line management -----------------------------------------------------

    def emit(self, text: str) -> None:
        if text:
            self.current.append(text)

    def break_line(self) -> None:
        line = _WS_RE.sub(" ", "".join(self.current)).rstrip()
        self.current = []
        if line or (self.lines and self.lines[-1]):
            self.lines.append(line)

    def emit_line(self, line: str) -> None:
        """Emit a pre-formatted line, bypassing whitespace collapsing."""
        self.break_line()
        self.lines.append(line.rstrip())

    def blank_line(self) -> None:
        self.break_line()
        if self.lines and self.lines[-1]:
            self.lines.append("")

    def finish(self) -> str:
        self.break_line()
        while self.lines and not self.lines[-1]:
            self.lines.pop()
        while self.lines and not self.lines[0]:
            self.lines.pop(0)
        return "\n".join(self.lines) + "\n" if self.lines else ""

    # -- traversal ------------------------------------------------------------

    def walk(self, node: Node) -> None:
        if isinstance(node, TextNode):
            parent_tag = node.parent.tag if node.parent else ""
            if parent_tag == "pre":
                for i, line in enumerate(node.text.split("\n")):
                    if i:
                        self.break_line()
                    self.emit(line)
            else:
                self.emit(_WS_RE.sub(" ", node.text))
            return
        element = node
        tag = element.tag
        if tag in _SKIP_TAGS:
            return
        if tag == "br":
            self.break_line()
            return
        if tag == "hr":
            self.blank_line()
            self.emit("-" * min(40, self.width))
            self.blank_line()
            return
        if tag == "img":
            alt = element.get("alt")
            if alt:
                self.emit(f"[image: {alt}]")
            return
        if tag == "input":
            self.emit(self._render_input(element))
            return
        if tag == "select":
            self._render_select(element)
            return
        if tag == "textarea":
            self.emit(f"[textarea {element.get('name')}]")
            return
        if tag in _HEADING_UNDERLINE:
            self._render_heading(element)
            return
        if tag == "table":
            self._render_table(element)
            return
        if tag == "li":
            self.break_line()
            self.emit("  " * max(self.list_depth - 1, 0) + "* ")
            for child in element.children:
                self.walk(child)
            self.break_line()
            return
        if tag in ("ul", "ol", "dl"):
            self.list_depth += 1
            self.blank_line()
            for child in element.children:
                self.walk(child)
            self.list_depth -= 1
            self.blank_line()
            return
        is_block = tag in _BLOCK_TAGS
        if is_block:
            self.blank_line()
        if tag == "a" and element.get("href"):
            self.emit("<")
            for child in element.children:
                self.walk(child)
            self.emit(f">[{element.get('href')}]")
        else:
            for child in element.children:
                self.walk(child)
        if is_block:
            self.blank_line()

    # -- element renderers -----------------------------------------------------

    def _render_heading(self, element: Element) -> None:
        self.blank_line()
        text = " ".join(element.get_text().split())
        self.emit(text)
        self.break_line()
        underline = _HEADING_UNDERLINE[element.tag]
        self.emit(underline * max(len(text), 1))
        self.blank_line()

    def _render_input(self, element: Element) -> str:
        input_type = element.get("type", "text").lower()
        name = element.get("name")
        value = element.get("value")
        if input_type in ("text", "", "password"):
            shown = value or "_" * 12
            return f"[{shown}]"
        if input_type == "checkbox":
            mark = "x" if element.has_attr("checked") else " "
            return f"[{mark}]"
        if input_type == "radio":
            mark = "o" if element.has_attr("checked") else " "
            return f"({mark})"
        if input_type == "submit":
            return f"< {value or 'Submit'} >"
        if input_type == "reset":
            return f"< {value or 'Reset'} >"
        if input_type == "hidden":
            return ""
        return f"[{input_type}:{name}]"

    def _render_select(self, element: Element) -> None:
        self.break_line()
        for option in element.find_all("option"):
            mark = ">" if option.has_attr("selected") else " "
            label = " ".join(option.get_text().split())
            self.emit(f"  {mark} {label}")
            self.break_line()

    def _render_table(self, element: Element) -> None:
        rows: list[list[str]] = []
        for tr in element.find_all("tr"):
            cells = [" ".join(cell.get_text().split())
                     for cell in tr.find_all("td", "th")]
            rows.append(cells)
        if not rows:
            return
        widths: list[int] = []
        for row in rows:
            for i, cell in enumerate(row):
                if i >= len(widths):
                    widths.append(0)
                widths[i] = max(widths[i], len(cell))
        self.blank_line()
        for row in rows:
            padded = [cell.ljust(widths[i]) for i, cell in enumerate(row)]
            self.emit_line("| " + " | ".join(padded) + " |")
        self.blank_line()
