"""Tenant routing at the HTTP edge — the ``/t/`` URL namespace.

Invocation syntax, the paper's CGI contract with a tenant in front::

    /t/{tenant}/{macro-file}/{cmd}[?name=val&...]

:class:`TenantHost` plugs into the shared :class:`repro.http.router.
Router` (``router.tenants``), so *both* edges — the threaded server and
the asyncio edge — speak it without either knowing the details.  Per
request it:

1. parses and validates the path (bad segment charset, ``..``,
   ``%2e%2e`` → rejected here, before any lookup);
2. resolves the tenant (unknown → 404);
3. authorizes against the tenant's visibility (private → owner only:
   401 with the Basic challenge when anonymous, 403 otherwise);
4. admits against the tenant's quota (exhausted → 429 with the unified
   ``Retry-After`` window-reset hint);
5. dispatches the tenant's own :class:`~repro.cgi.gateway.
   Db2WwwProgram` with ``REMOTE_USER`` and the tenant id riding the
   CGI environment (so app-server frames and subprocess runs carry
   both), negotiating JSON per request.
"""

from __future__ import annotations

import re
import traceback
from typing import Optional

from repro.cgi.environ import CgiEnvironment
from repro.cgi.request import CgiRequest, CgiResponse
from repro.html.entities import escape_html
from repro.http.headers import Headers
from repro.http.message import HttpRequest, HttpResponse, html_response
from repro.http.status import reason_for
from repro.overload.retryafter import retry_after_header
from repro.security.tenants import TenantAccessPolicy
from repro.tenancy.registry import NAME_PATTERN, Tenant, TenantRegistry

TENANT_PREFIX = "/t/"

#: Macro-file and command segments: the macro library re-validates on
#: load, but rejecting at parse time keeps traversal probes out of the
#: request pipeline entirely (and out of per-tenant counters).
_SEGMENT_PATTERN = re.compile(r"^[A-Za-z0-9][A-Za-z0-9_.-]*$")


def _segment_ok(segment: str) -> bool:
    return (bool(_SEGMENT_PATTERN.match(segment))
            and ".." not in segment)


def _page(status: int, detail: str,
          extra_headers: Optional[list[tuple[str, str]]] = None
          ) -> HttpResponse:
    reason = reason_for(status)
    response = html_response(
        f"<HTML><HEAD><TITLE>{status} {reason}</TITLE></HEAD>\n"
        f"<BODY><H1>{status} {reason}</H1>"
        f"<P>{escape_html(detail)}</P></BODY></HTML>\n",
        status=status)
    for name, value in extra_headers or ():
        response.headers.set(name, value)
    return response


class TenantHost:
    """Routes ``/t/...`` requests to their tenant's program."""

    def __init__(self, registry: TenantRegistry):
        self.registry = registry
        self.policy = TenantAccessPolicy(registry.authenticator)

    # ------------------------------------------------------------------

    def handle(self, router, request: HttpRequest, path: str,
               remote_addr: str, deadline=None) -> HttpResponse:
        """One tenant request; ``router`` supplies edge identity/tracing."""
        parsed = self._parse(path)
        if isinstance(parsed, HttpResponse):
            return parsed
        tenant_name, macro, command = parsed
        tenant = self.registry.get(tenant_name)
        if tenant is None:
            return _page(404, f"no tenant named {tenant_name!r}")
        decision = self.policy.authorize(
            tenant, request.headers.get("Authorization"))
        if not decision.allowed:
            tenant.record_denied()
            extra = None
            if decision.status == 401:
                extra = [("WWW-Authenticate",
                          f'Basic realm="{self.registry.authenticator.realm}"')]
            return _page(decision.status, decision.reason, extra)
        admitted, retry_after = tenant.quota.admit()
        if not admitted:
            tenant.record_throttled()
            return _page(
                429, f"tenant {tenant_name!r} is over quota",
                [("Retry-After", retry_after_header(retry_after))])
        tenant.record_request()
        environ = CgiEnvironment(
            request_method=request.method,
            script_name=TENANT_PREFIX.rstrip("/") + "/" + tenant_name,
            path_info=f"/{macro}/{command}",
            query_string=request.query,
            content_type=request.headers.get("Content-Type"),
            content_length=len(request.body),
            server_name=router.server_name,
            server_port=router.server_port,
            remote_addr=remote_addr,
            remote_user=decision.user or "",
            tenant=tenant_name,
            http_headers=dict(request.headers.items()),
            trace_id=router.tracer.current_trace_id(),
        )
        cgi_request = CgiRequest(environ=environ, stdin=request.body,
                                 deadline=deadline)
        cgi_response = self._dispatch(tenant, cgi_request)
        headers = Headers(cgi_response.headers)
        headers.setdefault("Content-Type", "text/html")
        return HttpResponse(status=cgi_response.status,
                            headers=headers,
                            body=cgi_response.body,
                            body_iter=cgi_response.body_iter)

    # ------------------------------------------------------------------

    def _parse(self, path: str):
        """``/t/{tenant}/{macro}/{cmd}`` → the 3 segments, or an error.

        Validation happens on the raw segments *before* any registry or
        library lookup; traversal spellings that URL-decode into dots
        (``%2e%2e``) fail the charset check because ``%`` is simply not
        in the segment alphabet.
        """
        segments = path[len(TENANT_PREFIX):].split("/")
        if len(segments) != 3 or not all(segments):
            return _page(
                404, "expected a path of the form "
                     "/t/{tenant}/{macro-file}/{cmd}")
        for segment in segments:
            if not _segment_ok(segment):
                return _page(
                    400, f"invalid path segment {segment!r}: tenant, "
                         "macro and command names are single "
                         "[A-Za-z0-9_.-] segments without '..'")
        tenant_name, macro, command = segments
        if not NAME_PATTERN.match(tenant_name):
            return _page(400, f"invalid tenant name {tenant_name!r}")
        return tenant_name, macro, command

    def _dispatch(self, tenant: Tenant,
                  request: CgiRequest) -> CgiResponse:
        """Run the tenant's program with the gateway's crash barrier."""
        from repro.cgi.gateway import (
            CgiGateway,  # noqa: F401  (documentation anchor)
            error_response,
            forbidden_response,
            unavailable_response,
        )
        from repro.errors import (
            CircuitOpenError,
            DeadlineExceededError,
            PoolExhaustedError,
            ReadOnlySqlError,
            ReproError,
        )
        try:
            return tenant.program.run(request)
        except ReadOnlySqlError as exc:
            return forbidden_response(exc)
        except (CircuitOpenError, PoolExhaustedError) as exc:
            return unavailable_response(exc)
        except DeadlineExceededError as exc:
            return error_response(504, "Gateway Timeout",
                                  f"{type(exc).__name__}: {exc}")
        except ReproError as exc:
            return error_response(500, "Internal Server Error",
                                  f"{type(exc).__name__}: {exc}")
        except Exception:  # noqa: BLE001 - server survival trumps purity
            return error_response(500, "Internal Server Error",
                                  traceback.format_exc())
