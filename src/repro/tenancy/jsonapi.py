"""The content-negotiated JSON API — every macro report, as data.

"An extensible web interface for databases" (PAPERS.md) argues the web
layer should expose many schemas behind one generic interface; the last
step of that argument is that *presentation* is a property of the
request, not the macro.  A client sending ``Accept: application/json``
(or ``?format=json``) gets the same ``%SQL_REPORT`` row pipeline — same
SQL, same cursor streaming, same caching and quotas — rendered as a
JSON envelope instead of HTML, so every existing macro becomes an API
endpoint without being edited.

The envelope::

    {"tenant": "shop", "macro": "orders.d2w", "command": "report",
     "results": [
       {"columns": ["ID", "TOTAL"],
        "rows": [{"ID": 1, "TOTAL": 9.5}, ...],
        "row_count": 2}
     ]}

One ``results`` entry per executed SQL section, in macro order; a
non-query statement contributes ``{"statement": "ok", "rowcount": n}``.
Rows stream straight off the live cursor — the whole page never exists
as one string, exactly like the HTML path.
"""

from __future__ import annotations

import json
from typing import Iterator, Optional

from repro.cgi.environ import CgiEnvironment
from repro.cgi.query_string import decode_pairs
from repro.core.report import ReportGenerator, RowRenderer
from repro.sql.cursor import value_to_text
from repro.sql.gateway import ExecutionResult

JSON_CONTENT_TYPE = "application/json"

#: The query variable that forces JSON without an Accept header
#: (handy for browsers and curl one-liners).
FORMAT_VARIABLE = "format"


def wants_json(environ: CgiEnvironment) -> bool:
    """True when this request negotiates the JSON rendering.

    Either the ``Accept`` header names ``application/json`` or the query
    string carries ``format=json``.  Absent both, the response is the
    existing HTML pipeline, byte for byte.
    """
    accept = environ.http_headers.get("Accept", "")
    if JSON_CONTENT_TYPE in accept.lower():
        return True
    for name, value in decode_pairs(environ.query_string):
        if name == FORMAT_VARIABLE and value.strip().lower() == "json":
            return True
    return False


def _json_value(value):
    """A cell as its natural JSON type; exotic types via value_to_text."""
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    return value_to_text(value)


class JsonRowRenderer(RowRenderer):
    """Streams executed SQL sections as the JSON envelope above.

    Stateful per request: the first section opens the envelope, each
    section appends one ``results`` entry row by row, and
    :meth:`finish` closes it (opening it first when the macro ran no
    SQL, so the output is always a complete document).
    """

    content_type = JSON_CONTENT_TYPE
    suppress_free_text = True

    def __init__(self, *, tenant: str = "", macro: str = "",
                 command: str = ""):
        self.tenant = tenant
        self.macro = macro
        self.command = command
        self._opened = False
        self._sections = 0

    # ------------------------------------------------------------------

    def _open(self) -> str:
        self._opened = True
        meta = {key: value for key, value in (
            ("tenant", self.tenant), ("macro", self.macro),
            ("command", self.command)) if value}
        # json.dumps({...}) minus its closing brace, then the results
        # array the sections stream into.
        head = json.dumps(meta)[:-1].rstrip()
        if meta:
            head += ", "
        return head + '"results": ['

    def render_iter(self, section, result: ExecutionResult,
                    generator: ReportGenerator) -> Iterator[str]:
        if not self._opened:
            yield self._open()
        if self._sections:
            yield ", "
        self._sections += 1
        if not result.is_query:
            generator.store.set_system("ROW_NUM", "0")
            generator.store.set_system("ROWCOUNT", str(result.rowcount))
            yield json.dumps({"statement": "ok",
                              "rowcount": result.rowcount})
            return
        # Same implicit-variable bookkeeping as the HTML paths, so a
        # macro that branches on ROW_NUM/ROWCOUNT after a section sees
        # identical state under either rendering.
        generator._install_column_names(result)
        columns = list(result.columns)
        yield ('{"columns": ' + json.dumps(columns) + ', "rows": [')
        row_num = 0
        for row in result.iter_rows():
            row_num += 1
            record = {name: _json_value(value)
                      for name, value in zip(columns, row)}
            yield (", " if row_num > 1 else "") + json.dumps(record)
        generator.store.set_system("ROW_NUM", str(row_num))
        generator.store.set_system("ROWCOUNT", str(result.row_total))
        yield '], "row_count": ' + str(result.row_total) + "}"

    def finish(self) -> Iterator[str]:
        if not self._opened:
            yield self._open()
        yield "]}\n"


def negotiated_renderer(environ: CgiEnvironment
                        ) -> Optional[JsonRowRenderer]:
    """The renderer for this request, or ``None`` for plain HTML."""
    if not wants_json(environ):
        return None
    parts = [part for part in environ.path_info.split("/") if part]
    return JsonRowRenderer(
        tenant=environ.tenant,
        macro=parts[0] if parts else "",
        command=parts[1] if len(parts) > 1 else "")
