"""Multi-tenant hosting — many isolated applications on one gateway.

The paper's deployment is one macro library in front of one database;
the DbShare model (SNIPPETS.md) hosts *many* small databases, each with
an owner, public/private visibility and a read-only switch, behind one
generic web interface.  A :class:`TenantRegistry` reproduces that on
top of the existing machinery:

* each :class:`Tenant` gets its own :class:`~repro.core.macrofile.
  MacroLibrary` (macro namespace) and a :class:`~repro.sql.gateway.
  ScopedDatabaseRegistry` view of the shared database registry, so two
  tenants may both call a database ``SHOP`` without sharing a backend,
  a pool, or — because cache keys carry the scoped name — a single
  cached row;
* ``read_only`` tenants run their engine with
  ``EngineConfig.read_only``: any non-SELECT is rejected with SQLSTATE
  42501 before a connection is acquired;
* per-tenant quotas (requests and fetched rows per fixed window) are
  admission-checked before dispatch and answer 429 with the unified
  ``Retry-After`` when exhausted;
* per-tenant request/row/denial counters surface on ``/metrics`` via
  :meth:`TenantRegistry.stats` (attach as a ``tenant`` stats source).
"""

from __future__ import annotations

import re
import threading
import time
from dataclasses import dataclass, replace
from pathlib import Path
from typing import Optional

from repro.cgi.gateway import Db2WwwProgram
from repro.cgi.request import CgiRequest
from repro.core.engine import EngineConfig, MacroEngine, MacroResult
from repro.core.macrofile import MacroLibrary
from repro.errors import SQLObjectError
from repro.security.auth import BasicAuthenticator
from repro.security.tenants import VISIBILITIES
from repro.sql.gateway import DatabaseRegistry, ScopedDatabaseRegistry
from repro.sql.querycache import QueryResultCache
from repro.tenancy.jsonapi import negotiated_renderer

#: Tenant (and tenant-database) names: one URL path segment, no
#: separators, no dot-dot — checked at parse time so traversal attempts
#: (``../``, ``%2e%2e``) never reach a filesystem or registry lookup.
NAME_PATTERN = re.compile(r"^[A-Za-z0-9][A-Za-z0-9_.-]*$")


def valid_tenant_name(name: str) -> bool:
    return (bool(NAME_PATTERN.match(name)) and ".." not in name
            and len(name) <= 64)


@dataclass
class TenantQuota:
    """Per-tenant fixed-window limits; ``None`` means unlimited.

    ``requests`` caps admissions per window; ``rows`` caps *fetched*
    query rows per window (charged after each page completes, so one
    huge report may overshoot once — the next request is what gets the
    429, the standard fixed-window trade).
    """

    requests: Optional[int] = None
    rows: Optional[int] = None
    window_seconds: float = 60.0


class _QuotaWindow:
    """Thread-safe fixed-window counters enforcing a TenantQuota."""

    def __init__(self, quota: TenantQuota):
        self.quota = quota
        self._lock = threading.Lock()
        self._window_start = time.monotonic()
        self._requests = 0
        self._rows = 0

    def _roll(self, now: float) -> None:
        if now - self._window_start >= self.quota.window_seconds:
            self._window_start = now
            self._requests = 0
            self._rows = 0

    def admit(self) -> tuple[bool, float]:
        """Admit one request: ``(allowed, retry_after_seconds)``.

        ``retry_after`` is the honest window-reset hint, same contract
        as the overload controller's 503s.
        """
        quota = self.quota
        if quota.requests is None and quota.rows is None:
            return True, 0.0
        with self._lock:
            now = time.monotonic()
            self._roll(now)
            exhausted = (
                (quota.requests is not None
                 and self._requests >= quota.requests)
                or (quota.rows is not None and self._rows >= quota.rows))
            if exhausted:
                remaining = quota.window_seconds - (now
                                                    - self._window_start)
                return False, max(0.0, remaining)
            self._requests += 1
            return True, 0.0

    def charge_rows(self, count: int) -> None:
        if count <= 0 or self.quota.rows is None:
            return
        with self._lock:
            self._rows += count


class Tenant:
    """One hosted application: macros + scoped databases + identity."""

    def __init__(self, name: str, *, owner: str,
                 visibility: str, read_only: bool,
                 databases: ScopedDatabaseRegistry,
                 library: MacroLibrary, engine: MacroEngine,
                 quota: Optional[TenantQuota] = None,
                 stream: bool = True):
        self.name = name
        self.owner = owner
        self.visibility = visibility
        self.read_only = read_only
        self.databases = databases
        self.library = library
        self.engine = engine
        self.quota = _QuotaWindow(quota or TenantQuota())
        self._lock = threading.Lock()
        self._requests = 0
        self._rows = 0
        self._denied = 0
        self._throttled = 0
        self.program = Db2WwwProgram(
            engine, library, stream=stream,
            negotiate=lambda request: negotiated_renderer(request.environ),
            result_hook=self._settle)

    # -- accounting --------------------------------------------------------

    def _settle(self, request: CgiRequest, result: MacroResult) -> None:
        """Charge a completed page: row quota + the rows counter."""
        with self._lock:
            self._rows += result.rows
        self.quota.charge_rows(result.rows)

    def record_request(self) -> None:
        with self._lock:
            self._requests += 1

    def record_denied(self) -> None:
        with self._lock:
            self._denied += 1

    def record_throttled(self) -> None:
        with self._lock:
            self._throttled += 1

    def stats(self) -> dict:
        """This tenant's counters (rendered as ``tenant_<name>_<key>``)."""
        with self._lock:
            return {
                "requests_total": self._requests,
                "rows_total": self._rows,
                "denied_total": self._denied,
                "throttled_total": self._throttled,
            }


class TenantRegistry:
    """All tenants hosted by one edge, plus their shared substrate.

    One shared physical :class:`DatabaseRegistry`, one shared
    :class:`BasicAuthenticator` (owners are global identities), one
    optional shared query cache whose keys the scoped registries keep
    disjoint per tenant.
    """

    def __init__(self, databases: Optional[DatabaseRegistry] = None, *,
                 authenticator: Optional[BasicAuthenticator] = None,
                 query_cache: Optional[QueryResultCache] = None,
                 engine_defaults: Optional[EngineConfig] = None,
                 stream: bool = True):
        self.databases = databases or DatabaseRegistry()
        self.authenticator = authenticator or BasicAuthenticator(
            realm="tenants")
        self.query_cache = query_cache
        self.engine_defaults = engine_defaults or EngineConfig()
        self.stream = stream
        self._tenants: dict[str, Tenant] = {}
        self._lock = threading.Lock()

    # -- lifecycle ---------------------------------------------------------

    def create_tenant(self, name: str, *, owner: str,
                      password: Optional[str] = None,
                      visibility: str = "public",
                      read_only: bool = False,
                      macro_root: Optional[str | Path] = None,
                      quota: Optional[TenantQuota] = None) -> Tenant:
        """Provision one tenant; returns it for macro/database setup.

        ``password`` (when given) registers ``owner`` with the shared
        authenticator; omit it for owners that already have credentials.
        """
        if not valid_tenant_name(name):
            raise ValueError(
                f"bad tenant name {name!r}: one path segment of "
                "[A-Za-z0-9_.-], no '..', leading alphanumeric")
        if visibility not in VISIBILITIES:
            raise ValueError(
                f"bad visibility {visibility!r}: expected one of "
                f"{'/'.join(VISIBILITIES)}")
        if not owner:
            raise ValueError("tenant owner must be non-empty")
        scoped = ScopedDatabaseRegistry(self.databases, name)
        config = replace(self.engine_defaults, read_only=read_only,
                         query_cache=self.query_cache)
        engine = MacroEngine(scoped, config=config)
        library = MacroLibrary(macro_root)
        tenant = Tenant(
            name, owner=owner, visibility=visibility,
            read_only=read_only, databases=scoped, library=library,
            engine=engine, quota=quota, stream=self.stream)
        with self._lock:
            if name in self._tenants:
                raise SQLObjectError(
                    f"tenant {name!r} already exists", sqlstate="42710")
            self._tenants[name] = tenant
        if password is not None:
            self.authenticator.add_user(owner, password)
        return tenant

    def drop_tenant(self, name: str) -> None:
        """Tear a tenant down: databases unregistered, cache purged.

        Refuses (SQLSTATE 55006, from the database registry) while any
        of the tenant's connections are still active; on success a
        recreated tenant of the same name starts with fresh write
        generations and an empty cache namespace — it can never serve
        the departed tenant's rows.
        """
        with self._lock:
            tenant = self._tenants.get(name)
            if tenant is None:
                raise SQLObjectError(f"no tenant named {name!r}",
                                     sqlstate="42704")
        for database in tenant.databases.names():
            tenant.databases.unregister(database, cache=self.query_cache)
        with self._lock:
            self._tenants.pop(name, None)

    # -- lookup ------------------------------------------------------------

    def get(self, name: str) -> Optional[Tenant]:
        with self._lock:
            return self._tenants.get(name)

    def __contains__(self, name: str) -> bool:
        with self._lock:
            return name in self._tenants

    def names(self) -> list[str]:
        with self._lock:
            return sorted(self._tenants)

    # -- observability -----------------------------------------------------

    def stats(self) -> dict:
        """Flat per-tenant counters for a metrics stats source.

        Attached as ``metrics.attach_stats_source("tenant", registry
        .stats)``, each key renders as ``tenant_<tenant>_<counter>``
        on ``/metrics``.
        """
        flat: dict[str, int] = {}
        with self._lock:
            tenants = sorted(self._tenants.items())
        for name, tenant in tenants:
            for key, value in tenant.stats().items():
                flat[f"{name}_{key}"] = value
        return flat

    def labeled_stats(self) -> dict:
        """Per-tenant counter bags keyed by tenant name.

        Attached as ``metrics.attach_labeled_source("tenant", "tenant",
        registry.labeled_stats)``: the same numbers as :meth:`stats`,
        but the tenant name travels as a label value
        (``tenant_requests_total{tenant="acme"}``) instead of being
        baked into the key — and the view's legacy flattening still
        renders the exact ``tenant_<name>_<counter>`` keys.
        """
        with self._lock:
            tenants = sorted(self._tenants.items())
        return {name: tenant.stats() for name, tenant in tenants}
