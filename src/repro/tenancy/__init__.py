"""Multi-tenant hosting: many isolated macro applications on one edge.

See :mod:`repro.tenancy.registry` for the tenant model (ownership,
visibility, read-only, quotas), :mod:`repro.tenancy.web` for the
``/t/{tenant}/{macro}/{cmd}`` routing served by both edges, and
:mod:`repro.tenancy.jsonapi` for the content-negotiated JSON API.
"""

from repro.tenancy.jsonapi import (
    JSON_CONTENT_TYPE,
    JsonRowRenderer,
    negotiated_renderer,
    wants_json,
)
from repro.tenancy.registry import (
    Tenant,
    TenantQuota,
    TenantRegistry,
    valid_tenant_name,
)
from repro.tenancy.web import TENANT_PREFIX, TenantHost

__all__ = [
    "JSON_CONTENT_TYPE",
    "JsonRowRenderer",
    "negotiated_renderer",
    "wants_json",
    "Tenant",
    "TenantQuota",
    "TenantRegistry",
    "valid_tenant_name",
    "TENANT_PREFIX",
    "TenantHost",
]
