"""Access control for the gateway — Section 5's security integrations.

"While DB2WWW does not provide any new security measure, it works with
the DB2 database, the Web server, and the firewall products to provide
secure data access over the internet."  The three layers reproduced:

* :class:`HostFilter` — the firewall: allow/deny by client address;
* :class:`BasicAuthenticator` + :class:`ProtectedProgram` — the web
  server's HTTP Basic authentication in front of a CGI program;
* per-database credentials are the DBMS's own job and are modelled by
  registering different databases under different names.
"""

from __future__ import annotations

import base64
import hashlib
import hmac
import ipaddress
import secrets
from typing import Optional

from repro.cgi.gateway import CgiProgram
from repro.cgi.request import CgiRequest, CgiResponse


class BasicAuthenticator:
    """An htpasswd-style user store for HTTP Basic authentication.

    Passwords are salted and hashed (SHA-256); 1996 servers stored crypt
    hashes, same idea.  Verification is constant-time.

    Empty usernames are rejected outright: ``""`` is what a malformed
    header decodes to, so allowing it as a registered account would turn
    a parsing accident into a login.
    """

    def __init__(self, realm: str = "repro"):
        self.realm = realm
        self._users: dict[str, tuple[bytes, bytes]] = {}

    def add_user(self, username: str, password: str) -> None:
        if not username:
            raise ValueError("username must be non-empty")
        salt = secrets.token_bytes(16)
        digest = self._digest(salt, password)
        self._users[username] = (salt, digest)

    @staticmethod
    def _digest(salt: bytes, password: str) -> bytes:
        return hashlib.sha256(salt + password.encode("utf-8")).digest()

    def verify(self, username: str, password: str) -> bool:
        record = self._users.get(username) if username else None
        if record is None:
            # Burn comparable time so user existence does not leak.
            # Empty usernames take this same path: rejected, but at the
            # cost of a real verification.
            hmac.compare_digest(
                self._digest(b"x" * 16, password), b"\x00" * 32)
            return False
        salt, stored = record
        return hmac.compare_digest(self._digest(salt, password), stored)

    def check_header(self, authorization: str) -> Optional[str]:
        """Validate an ``Authorization: Basic ...`` header value.

        Returns the *verified username* so callers can make identity
        decisions (tenant ownership, audit logs) without re-parsing the
        header, or ``None`` when the header is absent, malformed, or the
        credentials do not verify.  Success is always a non-empty string,
        so boolean use (``if check_header(...)``) keeps working.
        """
        scheme, _, payload = authorization.partition(" ")
        if scheme.lower() != "basic" or not payload:
            return None
        try:
            decoded = base64.b64decode(payload.strip(),
                                       validate=True).decode("utf-8")
        except (ValueError, UnicodeDecodeError):
            return None
        username, sep, password = decoded.partition(":")
        if not sep:
            return None
        if self.verify(username, password):
            return username
        return None


def basic_credentials(username: str, password: str) -> str:
    """Build the header value a client sends for Basic auth."""
    token = base64.b64encode(
        f"{username}:{password}".encode("utf-8")).decode("ascii")
    return f"Basic {token}"


class ProtectedProgram:
    """Wraps a CGI program behind Basic authentication."""

    def __init__(self, program: CgiProgram,
                 authenticator: BasicAuthenticator):
        self.program = program
        self.authenticator = authenticator

    def run(self, request: CgiRequest) -> CgiResponse:
        header = request.environ.http_headers.get("Authorization", "")
        user = self.authenticator.check_header(header)
        if user is None:
            body = (b"<HTML><BODY><H1>401 Unauthorized</H1>"
                    b"<P>This application requires a login.</P>"
                    b"</BODY></HTML>\n")
            return CgiResponse(
                status=401, reason="Unauthorized",
                headers=[
                    ("WWW-Authenticate",
                     f'Basic realm="{self.authenticator.realm}"'),
                    ("Content-Type", "text/html"),
                ],
                body=body)
        # CGI/1.1's REMOTE_USER: the wrapped program (and anything
        # behind a dispatch socket) sees who authenticated.
        request.environ.remote_user = user
        return self.program.run(request)


class HostFilter:
    """The firewall layer: allow or deny CGI access by client address.

    Rules are IP networks in CIDR form; the default posture is configured
    at construction (``default_allow``).  Deny rules win over allow
    rules, as packet filters of the era evaluated them.
    """

    def __init__(self, *, default_allow: bool = True):
        self._allow: list[ipaddress.IPv4Network | ipaddress.IPv6Network] = []
        self._deny: list[ipaddress.IPv4Network | ipaddress.IPv6Network] = []
        self.default_allow = default_allow

    def allow(self, network: str) -> "HostFilter":
        self._allow.append(ipaddress.ip_network(network, strict=False))
        return self

    def deny(self, network: str) -> "HostFilter":
        self._deny.append(ipaddress.ip_network(network, strict=False))
        return self

    def permits(self, address: str) -> bool:
        try:
            ip = ipaddress.ip_address(address)
        except ValueError:
            return False
        # A dual-stack edge reports IPv4 clients as IPv4-mapped IPv6
        # (::ffff:192.0.2.7); an address must match rules written in
        # either family, or a deny for 192.0.2.0/24 is bypassed by the
        # exact same client arriving over the v6 socket.
        candidates: list[ipaddress.IPv4Address | ipaddress.IPv6Address]
        candidates = [ip]
        if isinstance(ip, ipaddress.IPv6Address):
            mapped = ip.ipv4_mapped
            if mapped is not None:
                candidates.append(mapped)
        else:
            candidates.append(ipaddress.ip_address(f"::ffff:{ip}"))
        if any(c in net for c in candidates for net in self._deny):
            return False
        if any(c in net for c in candidates for net in self._allow):
            return True
        return self.default_allow

    def wrap(self, program: CgiProgram) -> "FilteredProgram":
        return FilteredProgram(program, self)


class FilteredProgram:
    """A CGI program reachable only from permitted addresses."""

    def __init__(self, program: CgiProgram, host_filter: HostFilter):
        self.program = program
        self.host_filter = host_filter

    def run(self, request: CgiRequest) -> CgiResponse:
        if not self.host_filter.permits(request.environ.remote_addr):
            body = (b"<HTML><BODY><H1>403 Forbidden</H1>"
                    b"<P>Access to this application is restricted.</P>"
                    b"</BODY></HTML>\n")
            return CgiResponse(status=403, reason="Forbidden",
                               headers=[("Content-Type", "text/html")],
                               body=body)
        return self.program.run(request)
