"""Multi-lingual Web pages — Section 5's internationalisation support.

"These issues include support for ... multi-byte character support for
international languages ..."  The 1996 system passed DBCS data through
untouched and let the page declare its code page.  The reproduction
provides:

* charset declaration/negotiation helpers (``Content-Type`` charset
  parameter and ``Accept-Language`` parsing),
* a :class:`MessageCatalog` for per-language UI strings, and
* :func:`localized_macro_name` — the deployment pattern the DB2WWW
  Developer's Guide recommended: one macro file per language, selected by
  the client's language preference.
"""

from __future__ import annotations

from dataclasses import dataclass, field

#: Charsets a period-faithful deployment might emit.  UTF-8 is the
#: substitution for the zoo of national code pages (see DESIGN.md).
KNOWN_CHARSETS = ("utf-8", "iso-8859-1", "shift_jis", "euc-jp", "big5")


def content_type_for(charset: str = "utf-8") -> str:
    return f"text/html; charset={charset}"


def parse_accept_language(header: str) -> list[str]:
    """Parse an ``Accept-Language`` header into ordered language tags.

    Quality values are honoured (stable sort, default q=1); malformed
    parts are skipped.  Returns lower-cased tags, most preferred first.
    """
    entries: list[tuple[float, int, str]] = []
    for index, part in enumerate(header.split(",")):
        piece = part.strip()
        if not piece:
            continue
        tag, _, params = piece.partition(";")
        tag = tag.strip().lower()
        if not tag:
            continue
        quality = 1.0
        params = params.strip()
        if params.startswith("q="):
            try:
                quality = float(params[2:])
            except ValueError:
                quality = 0.0
        entries.append((-quality, index, tag))
    entries.sort()
    return [tag for _q, _i, tag in entries if -_q > 0]


def negotiate_language(header: str, available: list[str],
                       default: str = "en") -> str:
    """Pick the best available language for an Accept-Language header.

    Falls back from a region subtag to its base language (``fr-CA`` →
    ``fr``) before falling back to the default.
    """
    available_lower = {lang.lower(): lang for lang in available}
    for tag in parse_accept_language(header):
        if tag in available_lower:
            return available_lower[tag]
        base = tag.split("-")[0]
        if base in available_lower:
            return available_lower[base]
    return default


def localized_macro_name(base_name: str, language: str) -> str:
    """``urlquery.d2w`` + ``fr`` → ``urlquery.fr.d2w``.

    The per-language-macro deployment pattern: the gateway picks the
    macro variant matching the negotiated language and falls back to the
    base name when no variant exists.
    """
    stem, dot, extension = base_name.rpartition(".")
    if not dot:
        return f"{base_name}.{language}"
    return f"{stem}.{language}.{extension}"


@dataclass
class MessageCatalog:
    """Per-language UI strings with fallback to a default language."""

    default_language: str = "en"
    _messages: dict[str, dict[str, str]] = field(default_factory=dict)

    def add(self, language: str, messages: dict[str, str]) -> None:
        self._messages.setdefault(language.lower(), {}).update(messages)

    def languages(self) -> list[str]:
        return sorted(self._messages)

    def get(self, key: str, language: str | None = None) -> str:
        """Look up ``key``; falls back to the default language, then to
        the key itself (visible, greppable, never a crash)."""
        for lang in (language, self.default_language):
            if lang is None:
                continue
            table = self._messages.get(lang.lower())
            if table is not None and key in table:
                return table[key]
        return key

    def defines_for(self, language: str) -> list[tuple[str, str]]:
        """All messages of a language as engine client-input pairs.

        Injecting these as client inputs makes ``$(msg_...)`` references
        in a single shared macro resolve per-language — the alternative
        to per-language macro files.
        """
        merged = dict(self._messages.get(self.default_language, {}))
        merged.update(self._messages.get(language.lower(), {}))
        return sorted(merged.items())
