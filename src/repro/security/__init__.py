"""Practical-issues substrate (Section 5): SQL safety, access control,
internationalisation."""

from repro.security.auth import (
    BasicAuthenticator,
    FilteredProgram,
    HostFilter,
    ProtectedProgram,
    basic_credentials,
)
from repro.security.i18n import (
    MessageCatalog,
    localized_macro_name,
    negotiate_language,
    parse_accept_language,
)
from repro.security.sqlsafe import (
    GuardedSession,
    SqlPolicy,
    UnsafeSqlError,
    assert_single_statement,
    assert_verb_allowed,
    escape_literal,
    quote_identifier,
    quote_literal,
)

__all__ = [
    "BasicAuthenticator",
    "FilteredProgram",
    "GuardedSession",
    "HostFilter",
    "MessageCatalog",
    "ProtectedProgram",
    "SqlPolicy",
    "UnsafeSqlError",
    "assert_single_statement",
    "assert_verb_allowed",
    "basic_credentials",
    "escape_literal",
    "localized_macro_name",
    "negotiate_language",
    "parse_accept_language",
    "quote_identifier",
    "quote_literal",
]
