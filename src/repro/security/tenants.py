"""Tenant visibility and ownership decisions — tenancy's security half.

Section 5 of the paper composes security from the layers around DB2WWW
(web-server auth, firewall, database credentials); multi-tenant hosting
adds one more: *who owns which application*.  The policy here turns the
HTTP Basic identity produced by
:meth:`repro.security.auth.BasicAuthenticator.check_header` into an
allow/deny decision against a tenant's declared visibility:

* ``public`` — anyone may invoke the tenant's macros (its ``read_only``
  flag and quotas still apply);
* ``private`` — only the tenant's owner: anonymous requests get 401
  (with the challenge), authenticated non-owners get 403.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Protocol

from repro.security.auth import BasicAuthenticator

VISIBILITIES = ("public", "private")


class TenantLike(Protocol):
    """What the policy needs to know about a tenant (duck-typed)."""

    name: str
    owner: str
    visibility: str


@dataclass
class AccessDecision:
    """The outcome of one authorization check."""

    allowed: bool
    #: HTTP status to answer with when denied (401 or 403).
    status: int = 200
    reason: str = ""
    #: The verified identity (``None`` when anonymous or bad creds) —
    #: becomes ``REMOTE_USER`` for the dispatched request either way.
    user: Optional[str] = None


class TenantAccessPolicy:
    """Maps (tenant, Authorization header) to an :class:`AccessDecision`.

    Credentials are always verified when presented — even for public
    tenants — so ``REMOTE_USER`` is trustworthy wherever it appears;
    *invalid* credentials against a public tenant simply proceed as
    anonymous (the paper's public home-page posture), while against a
    private tenant they deny with the challenge.
    """

    def __init__(self, authenticator: BasicAuthenticator):
        self.authenticator = authenticator

    def authorize(self, tenant: TenantLike,
                  authorization: str) -> AccessDecision:
        user = (self.authenticator.check_header(authorization)
                if authorization else None)
        if tenant.visibility == "public":
            return AccessDecision(True, user=user)
        if user is None:
            return AccessDecision(
                False, status=401,
                reason=f"tenant {tenant.name!r} is private: "
                       "authentication required")
        if user != tenant.owner:
            return AccessDecision(
                False, status=403, user=user,
                reason=f"tenant {tenant.name!r} is private to its owner")
        return AccessDecision(True, user=user)
