"""SQL-safety helpers for macro authors (Section 5's security posture).

The paper's system substitutes client text into SQL *by design* — that is
the entire mechanism — and notes only that DB2WWW "works with the DB2
database, the Web server, and the firewall products to provide secure
data access".  A 2020s reproduction owes users more than that; this
module provides the guard rails a careful deployment layers on top:

* literal/identifier quoting (re-exported from :mod:`repro.sql.dialect`),
* a statement-shape check that rejects piggy-backed statements, and
* an allow-list verb policy usable as a pre-execution hook.

These helpers are opt-in: the engine stays faithful to 1996 by default,
and the test-suite demonstrates both the injection (against the faithful
configuration) and the mitigation.
"""

from __future__ import annotations

import re

from repro.errors import ReproError
from repro.sql.dialect import (  # noqa: F401 - re-exported API
    escape_literal,
    is_plain_identifier,
    like_pattern,
    quote_identifier,
    quote_literal,
    statement_verb,
)


class UnsafeSqlError(ReproError):
    """An assembled SQL statement violated the configured policy."""


_STRING_OR_COMMENT_RE = re.compile(
    r"'(?:[^']|'')*'"      # single-quoted string (with '' escapes)
    r"|\"(?:[^\"])*\""      # double-quoted identifier
    r"|--[^\n]*"            # line comment
    r"|/\*.*?\*/",          # block comment
    re.DOTALL,
)


def strip_strings_and_comments(sql: str) -> str:
    """Replace string literals and comments with spaces.

    Lets structural checks (semicolons, verbs) look at the statement's
    skeleton without being fooled by quoted data.
    """
    return _STRING_OR_COMMENT_RE.sub(" ", sql)


def assert_single_statement(sql: str) -> str:
    """Reject SQL containing more than one statement.

    A classic injection (``'; DROP TABLE urldb; --``) turns one statement
    into several; the gateway prepared exactly one, so a semicolon in the
    skeleton means the assembled text is not what the macro author wrote.
    A single trailing semicolon is tolerated.
    """
    skeleton = strip_strings_and_comments(sql).strip().rstrip(";")
    if ";" in skeleton:
        raise UnsafeSqlError(
            "assembled SQL contains multiple statements")
    return sql


def assert_verb_allowed(sql: str,
                        allowed: frozenset[str] | set[str]) -> str:
    """Reject statements whose verb is outside the allow list.

    A read-only deployment passes ``{"SELECT"}``; the order-entry app
    passes ``{"SELECT", "INSERT", "UPDATE"}``.
    """
    verb = statement_verb(sql)
    if verb not in {v.upper() for v in allowed}:
        raise UnsafeSqlError(
            f"statement verb {verb or '(none)'!r} is not allowed here")
    return sql


class SqlPolicy:
    """A composed policy: single statement + verb allow list.

    Apply from application code before handing assembled SQL to the
    connection, or wrap a :class:`repro.sql.gateway.MacroSqlSession`.
    """

    def __init__(self, *, verbs: set[str] | frozenset[str] = frozenset(
            {"SELECT"}), single_statement: bool = True):
        self.verbs = frozenset(v.upper() for v in verbs)
        self.single_statement = single_statement

    def check(self, sql: str) -> str:
        if self.single_statement:
            assert_single_statement(sql)
        assert_verb_allowed(sql, self.verbs)
        return sql


class GuardedSession:
    """Wraps a ``MacroSqlSession`` so every statement passes a policy.

    Duck-typed to the session interface the engine uses (``execute``,
    ``finish``, ``failed``, ``statement_log``), so hardened deployments
    can substitute it transparently.
    """

    def __init__(self, session, policy: SqlPolicy):
        self._session = session
        self.policy = policy

    def execute(self, sql: str):
        return self._session.execute(self.policy.check(sql))

    def finish(self, success: bool = True) -> None:
        self._session.finish(success)

    @property
    def failed(self) -> bool:
        return self._session.failed

    @property
    def statement_log(self) -> list[str]:
        return self._session.statement_log
