"""The Section 6 comparison, made measurable.

The paper compares DB2 WWW Connection qualitatively against GSQL, WDB,
general scripting (Perl/REXX — our raw-CGI baseline stands in: a general
program hand-printing HTML) and Oracle PL/SQL.  This module pins that
comparison down as:

* a **capability matrix** — the requirements list of Section 1 (easy to
  build, full HTML for forms, full SQL, custom report layout, conditional
  SQL assembly, hidden variables / multi-interaction linking, no coding,
  usable with visual HTML/SQL tools, DBMS-independent), scored per
  gateway from what each implementation can actually express; and
* a **developer-effort table** — non-blank lines the application author
  writes for the same URL-query application on each gateway.

The latency/throughput leg of the comparison lives in
``benchmarks/bench_cmp6_gateway_comparison.py``, which mounts all five
programs side by side.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.apps.urlquery import URLQUERY_MACRO
from repro.baselines import gsql, plsql, rawcgi, wdb

#: The capability axes, drawn from the paper's Sections 1 and 6.
CAPABILITIES: list[tuple[str, str]] = [
    ("full_html", "Full power of HTML for input/report forms"),
    ("full_sql", "Full power of SQL including updates"),
    ("custom_report", "Custom layout of query reports"),
    ("conditional_sql", "Conditional/list assembly of SQL from inputs"),
    ("hidden_variables", "Hidden variables & multi-interaction linking"),
    ("no_coding", "Applications built without procedural coding"),
    ("visual_tools", "Native HTML/SQL usable with visual tools"),
    ("auto_generation", "Forms derivable automatically from the schema"),
    ("dbms_independent", "Not tied to a single DBMS vendor"),
]


@dataclass(frozen=True)
class GatewayProfile:
    """One gateway's scored capabilities and developer effort."""

    name: str
    description: str
    capabilities: dict[str, bool]
    developer_loc: int

    def capability_count(self) -> int:
        return sum(1 for v in self.capabilities.values() if v)


def db2www_developer_loc() -> int:
    """Non-blank lines of the Appendix A macro (all the author writes)."""
    return sum(1 for line in URLQUERY_MACRO.splitlines() if line.strip())


def profiles() -> list[GatewayProfile]:
    """The five gateways of the comparison, scored.

    The boolean scores restate the paper's prose: GSQL "does not allow
    full use of SQL and HTML capabilities ... no mechanism for custom
    layout"; WDB's "FDF files contain no information about the
    input/output form layout ... very limited query and report form
    building capabilities"; scripting/PL-SQL "requires extensive
    programming"; PL/SQL "is primarily limited to Oracle databases".
    """
    return [
        GatewayProfile(
            name="db2www",
            description="DB2 WWW Connection (this paper)",
            capabilities={
                "full_html": True,
                "full_sql": True,
                "custom_report": True,
                "conditional_sql": True,
                "hidden_variables": True,
                "no_coding": True,
                "visual_tools": True,
                "auto_generation": False,
                "dbms_independent": True,
            },
            developer_loc=db2www_developer_loc(),
        ),
        GatewayProfile(
            name="gsql",
            description="GSQL-style hybrid declarative language",
            capabilities={
                "full_html": False,
                "full_sql": False,
                "custom_report": False,
                "conditional_sql": False,
                "hidden_variables": False,
                "no_coding": True,
                "visual_tools": False,
                "auto_generation": False,
                "dbms_independent": True,
            },
            developer_loc=gsql.developer_loc(),
        ),
        GatewayProfile(
            name="wdb",
            description="WDB-style FDF generator + runtime",
            capabilities={
                "full_html": False,
                "full_sql": False,
                "custom_report": False,
                "conditional_sql": False,
                "hidden_variables": False,
                "no_coding": True,
                "visual_tools": False,
                "auto_generation": True,
                "dbms_independent": True,
            },
            developer_loc=wdb.developer_loc(),
        ),
        GatewayProfile(
            name="rawcgi",
            description="Hand-coded CGI program (Perl/REXX stand-in)",
            capabilities={
                "full_html": True,
                "full_sql": True,
                "custom_report": True,
                "conditional_sql": True,
                "hidden_variables": True,
                "no_coding": False,
                "visual_tools": False,
                "auto_generation": False,
                "dbms_independent": True,
            },
            developer_loc=rawcgi.developer_loc(),
        ),
        GatewayProfile(
            name="plsql",
            description="PL/SQL-style stored-procedure HTML printing",
            capabilities={
                "full_html": True,
                "full_sql": True,
                "custom_report": True,
                "conditional_sql": True,
                "hidden_variables": False,
                "no_coding": False,
                "visual_tools": False,
                "auto_generation": False,
                "dbms_independent": False,
            },
            developer_loc=plsql.developer_loc(),
        ),
    ]


def capability_table() -> str:
    """Render the matrix as fixed-width text (the CMP6 bench prints it)."""
    rows = profiles()
    name_width = max(len(key) for key, _ in CAPABILITIES)
    header = " ".join(f"{p.name:>8}" for p in rows)
    lines = [f"{'capability':<{name_width}} {header}"]
    for key, _label in CAPABILITIES:
        cells = " ".join(
            f"{'yes' if p.capabilities[key] else '-':>8}" for p in rows)
        lines.append(f"{key:<{name_width}} {cells}")
    loc_cells = " ".join(f"{p.developer_loc:>8}" for p in rows)
    lines.append(f"{'developer_loc':<{name_width}} {loc_cells}")
    return "\n".join(lines)
