"""Baseline: a WDB-style gateway (Section 6, [WDB]).

"WDB contains two components: a form definition file (FDF) generator and
the WDB run time engine.  The FDF generator extracts table and field
definitions from a database to build a skeleton form definition file ...
The WDB run time engine automatically generates the HTML query forms, the
SQL query, and the report forms based on the FDFs.  While the FDF
generator provides a quick and easy way to build simple query and report
forms ... the FDF files contain no information about the input/output
form layout.  Besides, WDB has very limited query and report form
building capabilities."

Faithfully to that description, this baseline:

* *generates* an FDF from the database catalog (zero authoring — its
  genuine strength, which the comparison benchmark credits), and
* serves an automatic per-column search form and fixed tabular report
  with per-column LIKE/equality filters AND-ed together (its genuine
  limitation: no OR search across fields, no custom layout, no
  conditional SQL).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cgi.request import CgiRequest, CgiResponse
from repro.html import builder
from repro.html.entities import escape_html
from repro.sql.catalog import describe_table
from repro.sql.dialect import like_pattern, quote_literal
from repro.sql.gateway import DatabaseRegistry


@dataclass
class FdfField:
    """One field of a form definition file."""

    column: str
    label: str
    type_name: str
    searchable: bool = True
    listed: bool = True

    def serialize(self) -> str:
        flags = []
        if self.searchable:
            flags.append("search")
        if self.listed:
            flags.append("list")
        return (f"FIELD {self.column} label={self.label!r} "
                f"type={self.type_name} {' '.join(flags)}")


@dataclass
class FormDefinition:
    """A WDB form definition: one table, a set of fields."""

    table: str
    title: str
    fields: list[FdfField] = field(default_factory=list)

    def serialize(self) -> str:
        lines = [f"TABLE {self.table}", f"TITLE {self.title}"]
        lines += [fld.serialize() for fld in self.fields]
        return "\n".join(lines) + "\n"

    def searchable_fields(self) -> list[FdfField]:
        return [f for f in self.fields if f.searchable]

    def listed_columns(self) -> list[str]:
        return [f.column for f in self.fields if f.listed]


def generate_fdf(registry: DatabaseRegistry, database: str,
                 table: str) -> FormDefinition:
    """The FDF generator: catalog in, skeleton form definition out."""
    conn = registry.connect(database)
    try:
        info = describe_table(conn, table)
    finally:
        conn.close()
    fields = [
        FdfField(
            column=col.name,
            label=col.name.replace("_", " ").title(),
            type_name="char" if col.is_character else "numeric",
            searchable=True,
            listed=True,
        )
        for col in info.columns
    ]
    return FormDefinition(table=table,
                          title=f"Query {table}", fields=fields)


class WdbProgram:
    """The WDB run-time engine for one form definition."""

    def __init__(self, fdf: FormDefinition, registry: DatabaseRegistry,
                 database: str, *, mount: str = "/cgi-bin/wdb",
                 max_rows: int = 100):
        self.fdf = fdf
        self.registry = registry
        self.database = database
        self.mount = mount
        self.max_rows = max_rows

    def run(self, request: CgiRequest) -> CgiResponse:
        components = request.path_components()
        command = components[0] if components else "input"
        if command == "input":
            html = self._render_form()
        else:
            html = self._render_report(dict(request.input_pairs()))
        return CgiResponse(headers=[("Content-Type", "text/html")],
                           body=html.encode("utf-8"))

    def _render_form(self) -> str:
        rows = [
            builder.element(
                "p", builder.text(fld.label + ": "),
                builder.element("input", type_="text",
                                name=fld.column))
            for fld in self.fdf.searchable_fields()
        ]
        form = builder.element(
            "form", *rows,
            builder.element("input", type_="submit", value="Search"),
            method="get", action=f"{self.mount}/report")
        note = builder.element(
            "p", builder.text(
                "Fill any fields to constrain the search; all filled "
                "fields must match."))
        return builder.page(self.fdf.title,
                            builder.element(
                                "h1", builder.text(self.fdf.title)),
                            note, form)

    def _render_report(self, inputs: dict[str, str]) -> str:
        conditions = []
        for fld in self.fdf.searchable_fields():
            value = inputs.get(fld.column, "").strip()
            if not value:
                continue
            if fld.type_name == "char":
                pattern = like_pattern(value, prefix=True, suffix=True)
                conditions.append(
                    f"{fld.column} LIKE {quote_literal(pattern)} "
                    "ESCAPE '\\'")
            else:
                conditions.append(
                    f"{fld.column} = {quote_literal(value)}")
        where = f" WHERE {' AND '.join(conditions)}" if conditions else ""
        columns = ", ".join(self.fdf.listed_columns())
        sql = f"SELECT {columns} FROM {self.fdf.table}{where}"
        conn = self.registry.connect(self.database)
        try:
            cursor = conn.execute(sql)
            names = cursor.column_names
            rows = cursor.fetchmany(self.max_rows)
        finally:
            conn.close()
        header = "".join(f"<TH>{escape_html(n)}</TH>" for n in names)
        body = "".join(
            "<TR>" + "".join(
                f"<TD>{escape_html('' if v is None else str(v))}</TD>"
                for v in row) + "</TR>\n"
            for row in rows)
        table = (f"<TABLE BORDER=1>\n<TR>{header}</TR>\n{body}"
                 "</TABLE>\n")
        return builder.page(
            self.fdf.title + " - result",
            builder.element("h1", builder.text(self.fdf.title)),
            table,
            builder.element("p", builder.text(
                f"{len(rows)} row(s) shown (limit {self.max_rows}).")))


def install_urlquery(registry: DatabaseRegistry,
                     database: str = "URLDB") -> WdbProgram:
    """The URL-query application, WDB style: generated, not authored."""
    fdf = generate_fdf(registry, database, "urldb")
    return WdbProgram(fdf, registry, database)


def developer_loc() -> int:
    """Lines the application developer writes.

    Zero: WDB generates the FDF from the catalog.  (Authors could edit
    the skeleton; the baseline uses it as generated.)
    """
    return 0
