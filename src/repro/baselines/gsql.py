"""Baseline: a GSQL-style gateway (Section 6, [GSQL]).

"GSQL uses an intermediate declarative language which is a hybrid of SQL
and HTML.  The GSQL language is simpler than pure HTML and SQL ...  This
language, however, is quite restrictive and its method of variable
substitution does not allow full use of SQL and HTML capabilities.
Furthermore, there is no mechanism defined for custom layout of query
reports."

The *proc file* implemented here captures that design point: a handful of
declarative directives, automatic form generation (no HTML authoring, no
layout control), ``$name`` placeholder substitution into one SQL template
(no conditionals, no list joining — missing inputs substitute as empty
text), and a fixed tabular report.

Proc-file directives (one per line; ``#`` comments)::

    TITLE:  page title text
    FIELD:  name|label|type[|value]     type: text, checkbox, select
    OPTION: fieldname|label|value       options for a select field
    SQL:    the query template with $name placeholders
    SHOW:   comma-separated result columns (informational)
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

from repro.cgi.request import CgiRequest, CgiResponse
from repro.errors import ReproError, SQLError
from repro.html import builder
from repro.html.entities import escape_html
from repro.sql.gateway import DatabaseRegistry

_PLACEHOLDER_RE = re.compile(r"\$([A-Za-z_][A-Za-z0-9_]*)")


class ProcFileError(ReproError):
    """The proc file is malformed."""


@dataclass
class ProcField:
    name: str
    label: str
    type: str = "text"
    value: str = ""
    options: list[tuple[str, str]] = field(default_factory=list)


@dataclass
class ProcFile:
    """A parsed GSQL-style proc file."""

    title: str = "GSQL Query"
    fields: list[ProcField] = field(default_factory=list)
    sql_template: str = ""
    show: list[str] = field(default_factory=list)

    @classmethod
    def parse(cls, text: str) -> "ProcFile":
        proc = cls()
        by_name: dict[str, ProcField] = {}
        for line_no, raw in enumerate(text.splitlines(), start=1):
            line = raw.strip()
            if not line or line.startswith("#"):
                continue
            keyword, sep, rest = line.partition(":")
            if not sep:
                raise ProcFileError(
                    f"line {line_no}: expected 'KEYWORD: ...'")
            keyword = keyword.strip().upper()
            rest = rest.strip()
            if keyword == "TITLE":
                proc.title = rest
            elif keyword == "FIELD":
                parts = [p.strip() for p in rest.split("|")]
                if len(parts) < 2:
                    raise ProcFileError(
                        f"line {line_no}: FIELD needs name|label")
                fld = ProcField(
                    name=parts[0], label=parts[1],
                    type=parts[2] if len(parts) > 2 else "text",
                    value=parts[3] if len(parts) > 3 else "")
                proc.fields.append(fld)
                by_name[fld.name] = fld
            elif keyword == "OPTION":
                parts = [p.strip() for p in rest.split("|")]
                if len(parts) != 3 or parts[0] not in by_name:
                    raise ProcFileError(
                        f"line {line_no}: OPTION needs known-field|label"
                        "|value")
                by_name[parts[0]].options.append((parts[1], parts[2]))
            elif keyword == "SQL":
                proc.sql_template = rest
            elif keyword == "SHOW":
                proc.show = [c.strip() for c in rest.split(",")
                             if c.strip()]
            else:
                raise ProcFileError(
                    f"line {line_no}: unknown directive {keyword!r}")
        if not proc.sql_template:
            raise ProcFileError("proc file defines no SQL template")
        return proc

    # -- the restrictive substitution the paper criticises ---------------

    def build_sql(self, inputs: dict[str, str]) -> str:
        """Substitute ``$name`` placeholders with (quote-escaped) values.

        No conditionals: a missing input becomes the empty string, which
        is how GSQL-style templates end up with ``LIKE '%%'`` catch-alls —
        a behaviour the comparison benchmark points at.
        """
        def replace(match: re.Match[str]) -> str:
            return inputs.get(match.group(1), "").replace("'", "''")
        return _PLACEHOLDER_RE.sub(replace, self.sql_template)


class GsqlProgram:
    """CGI program serving one proc file (auto form + auto table)."""

    def __init__(self, proc: ProcFile, registry: DatabaseRegistry,
                 database: str, *, mount: str = "/cgi-bin/gsql"):
        self.proc = proc
        self.registry = registry
        self.database = database
        self.mount = mount

    def run(self, request: CgiRequest) -> CgiResponse:
        components = request.path_components()
        command = components[0] if components else "input"
        if command == "input":
            html = self._render_form()
        else:
            html = self._render_report(dict(request.input_pairs()))
        return CgiResponse(headers=[("Content-Type", "text/html")],
                           body=html.encode("utf-8"))

    # -- automatic form: the layout is the gateway's, not the author's ---

    def _render_form(self) -> str:
        rows: list[str] = []
        for fld in self.proc.fields:
            if fld.type == "text":
                control = builder.element(
                    "input", type_="text", name=fld.name, value=fld.value)
            elif fld.type == "checkbox":
                control = builder.element(
                    "input", type_="checkbox", name=fld.name,
                    value=fld.value or "on")
            elif fld.type == "select":
                options = "".join(
                    builder.element("option", builder.text(label),
                                    value=value)
                    for label, value in fld.options)
                control = builder.element("select", options,
                                          name=fld.name)
            else:
                control = builder.text(f"[unsupported type {fld.type}]")
            rows.append(builder.element(
                "p", builder.text(fld.label + ": "), control))
        form = builder.element(
            "form", *rows,
            builder.element("input", type_="submit", value="Run Query"),
            method="post", action=f"{self.mount}/report")
        return builder.page(self.proc.title,
                            builder.element(
                                "h1", builder.text(self.proc.title)),
                            form)

    # -- automatic report: fixed table, no custom layout possible --------

    def _render_report(self, inputs: dict[str, str]) -> str:
        sql = self.proc.build_sql(inputs)
        conn = self.registry.connect(self.database)
        try:
            try:
                cursor = conn.execute(sql)
            except SQLError as exc:
                return builder.page(
                    self.proc.title,
                    builder.element("h1", builder.text("Query failed")),
                    builder.element("pre", builder.text(str(exc))))
            columns = cursor.column_names
            header = "".join(
                f"<TH>{escape_html(c)}</TH>" for c in columns)
            body_rows = []
            for row in cursor:
                cells = "".join(
                    f"<TD>{escape_html('' if v is None else str(v))}</TD>"
                    for v in row)
                body_rows.append(f"<TR>{cells}</TR>\n")
        finally:
            conn.close()
        table = (f"<TABLE BORDER=1>\n<TR>{header}</TR>\n"
                 + "".join(body_rows) + "</TABLE>\n")
        return builder.page(
            self.proc.title + " - result",
            builder.element("h1", builder.text(self.proc.title)),
            table)


#: The URL-query application as a GSQL-style proc file.  Note what it
#: *cannot* express, per the paper: OR-joining only the checked fields
#: (the template hard-codes a title search), hidden variables, custom
#: hyperlinked report layout.
URLQUERY_PROC = """\
TITLE: Query URL Information (GSQL)
FIELD: SEARCH|Search string|text|ib
SQL: SELECT url, title, description FROM urldb \
WHERE title LIKE '%$SEARCH%' OR url LIKE '%$SEARCH%' ORDER BY title
SHOW: url, title, description
"""


def install_urlquery(registry: DatabaseRegistry,
                     database: str = "URLDB") -> GsqlProgram:
    return GsqlProgram(ProcFile.parse(URLQUERY_PROC), registry, database)


def developer_loc() -> int:
    """Lines the application developer writes: the proc file."""
    return sum(1 for line in URLQUERY_PROC.splitlines() if line.strip())
