"""Baseline: a PL/SQL-style stored-procedure gateway (Section 6,
[PL/SQL]).

"In Oracle's PL/SQL, a new mechanism is provided to send the HTML output
from the PL/SQL stored procedure back to the Web CGI's output stream ...
However, building applications requires extensive programming (as in the
scripting languages described above), and the PL/SQL language is primarily
limited to Oracle databases."

The shape reproduced here: application logic lives in *stored procedures*
registered with the gateway; each procedure receives an ``htp`` writer
(Oracle's hypertext-procedures package, our
:class:`repro.html.builder.HtmlWriter`), the request parameters and a
database connection, and prints the page imperatively.  The URL selects
the procedure: ``/cgi-bin/owa/<procedure>?param=value``.
"""

from __future__ import annotations

import inspect
from typing import Callable, Protocol

from repro.cgi.gateway import error_response
from repro.cgi.request import CgiRequest, CgiResponse
from repro.html.builder import HtmlWriter
from repro.html.entities import escape_html
from repro.sql.connection import Connection
from repro.sql.gateway import DatabaseRegistry


class StoredProcedure(Protocol):
    def __call__(self, htp: HtmlWriter, params: dict[str, str],
                 conn: Connection) -> None:  # pragma: no cover
        ...


class ProcedureRegistry:
    """Named stored procedures, as the Oracle web agent kept them."""

    def __init__(self) -> None:
        self._procedures: dict[str, StoredProcedure] = {}

    def register(self, name: str,
                 proc: StoredProcedure | None = None):
        if proc is None:
            def decorator(f: StoredProcedure) -> StoredProcedure:
                self._procedures[name] = f
                return f
            return decorator
        self._procedures[name] = proc
        return proc

    def get(self, name: str) -> StoredProcedure | None:
        return self._procedures.get(name)

    def names(self) -> list[str]:
        return sorted(self._procedures)


class PlsqlProgram:
    """The web agent CGI program dispatching to stored procedures."""

    def __init__(self, registry: DatabaseRegistry, database: str,
                 procedures: ProcedureRegistry):
        self.registry = registry
        self.database = database
        self.procedures = procedures

    def run(self, request: CgiRequest) -> CgiResponse:
        components = request.path_components()
        if not components:
            return error_response(404, "Not Found",
                                  "no procedure named in URL")
        procedure = self.procedures.get(components[0])
        if procedure is None:
            return error_response(
                404, "Not Found",
                f"no stored procedure {components[0]!r}")
        params = dict(request.input_pairs())
        htp = HtmlWriter()
        conn = self.registry.connect(self.database)
        try:
            procedure(htp, params, conn)
        finally:
            conn.close()
        return CgiResponse(headers=[("Content-Type", "text/html")],
                           body=htp.getvalue().encode("utf-8"))


# ---------------------------------------------------------------------------
# The URL-query application as a pair of stored procedures
# ---------------------------------------------------------------------------


def urlquery_form(htp: HtmlWriter, params: dict[str, str],
                  conn: Connection) -> None:
    """Input-form procedure: every tag printed from code."""
    htp.print("<HTML><HEAD><TITLE>URL Query (PL/SQL)</TITLE></HEAD>")
    htp.print("<BODY><H1>Query URL Information</H1>")
    htp.print('<FORM METHOD="post" '
              'ACTION="/cgi-bin/owa/urlquery_report">')
    htp.print('Search String: '
              '<INPUT TYPE="text" NAME="SEARCH" VALUE="ib">')
    htp.print('<P><INPUT TYPE="checkbox" NAME="USE_URL" VALUE="yes" '
              'CHECKED> URL<BR>')
    htp.print('<INPUT TYPE="checkbox" NAME="USE_TITLE" VALUE="yes" '
              'CHECKED> Title<BR>')
    htp.print('<INPUT TYPE="checkbox" NAME="USE_DESC" VALUE="yes"> '
              'Description')
    htp.print('<P><INPUT TYPE="submit" VALUE="Submit Query">')
    htp.print("</FORM></BODY></HTML>")


def urlquery_report(htp: HtmlWriter, params: dict[str, str],
                    conn: Connection) -> None:
    """Report procedure: SQL assembly and row printing by hand."""
    search = params.get("SEARCH", "").replace("'", "''")
    conditions = []
    if params.get("USE_URL"):
        conditions.append(f"url LIKE '%{search}%'")
    if params.get("USE_TITLE"):
        conditions.append(f"title LIKE '%{search}%'")
    if params.get("USE_DESC"):
        conditions.append(f"description LIKE '%{search}%'")
    where = f" WHERE {' OR '.join(conditions)}" if conditions else ""
    htp.print("<HTML><HEAD><TITLE>URL Query Result (PL/SQL)"
              "</TITLE></HEAD>")
    htp.print("<BODY><H1>URL Query Result</H1><HR><UL>")
    cursor = conn.execute(
        f"SELECT url, title FROM urldb{where} ORDER BY title")
    for url, title in cursor:
        htp.print(f'<LI> <A HREF="{url}">{escape_html(str(title))}</A>')
    htp.print("</UL><HR></BODY></HTML>")


def install_urlquery(registry: DatabaseRegistry,
                     database: str = "URLDB") -> PlsqlProgram:
    procedures = ProcedureRegistry()
    procedures.register("urlquery_form", urlquery_form)
    procedures.register("urlquery_report", urlquery_report)
    return PlsqlProgram(registry, database, procedures)


def developer_loc() -> int:
    """Lines the application developer writes: both procedures."""
    total = 0
    for func in (urlquery_form, urlquery_report):
        source = inspect.getsource(func)
        total += sum(1 for line in source.splitlines()
                     if line.strip() and not line.strip().startswith("#")
                     and '"""' not in line)
    return total
