"""Re-implementations of the Section 6 comparators.

Each module exposes ``install_urlquery(registry)`` returning a CGI program
serving the same URL-query workload, and ``developer_loc()`` reporting the
authoring effort, so the CMP6 benchmark can compare all five gateways on
identical terms.
"""

from repro.baselines import gsql, plsql, rawcgi, wdb  # noqa: F401
from repro.baselines.comparison import (
    CAPABILITIES,
    GatewayProfile,
    capability_table,
    db2www_developer_loc,
    profiles,
)

__all__ = [
    "CAPABILITIES",
    "GatewayProfile",
    "capability_table",
    "db2www_developer_loc",
    "gsql",
    "plsql",
    "profiles",
    "rawcgi",
    "wdb",
]
