"""Baseline: the hand-coded stand-alone CGI program.

Section 1 of the paper describes — and argues against — "a stand-alone
program that accesses DBMS data ... invoked directly as a CGI application
from a URL": the developer hand-parses ``QUERY_STRING``, hand-builds SQL,
and hand-prints HTML, so markup is "intermixed with complex datastructures
and programming logic".

This module is that program, written carefully, for the same URL-query
application as Appendix A.  It exists as the performance baseline (it does
the minimum possible work per request, so DB2WWW's parse/substitution
overhead is measured against it) and as the developer-effort baseline
(compare its line count with the macro's).
"""

from __future__ import annotations

import inspect

from repro.cgi.request import CgiRequest, CgiResponse
from repro.html.entities import escape_html
from repro.sql.gateway import DatabaseRegistry

#: Which report columns the user may ask for, mapped to safe column names
#: (the hand-coded app must do its own input validation).
_ALLOWED_FIELDS = {"title": "title", "description": "description"}


class RawCgiUrlQuery:
    """The URL-query application as a plain CGI program."""

    def __init__(self, registry: DatabaseRegistry,
                 database: str = "URLDB"):
        self.registry = registry
        self.database = database

    def run(self, request: CgiRequest) -> CgiResponse:
        components = request.path_components()
        command = components[0] if components else "input"
        if command == "input":
            html = self._input_page()
        else:
            html = self._report_page(request.input_pairs())
        return CgiResponse(headers=[("Content-Type", "text/html")],
                           body=html.encode("utf-8"))

    # -- input form (hand-written markup in code: the paper's complaint) --

    def _input_page(self) -> str:
        return (
            "<HTML><HEAD><TITLE>URL Query (raw CGI)</TITLE></HEAD>\n"
            "<BODY><H1>Query URL Information</H1>\n"
            '<FORM METHOD="post" ACTION="/cgi-bin/rawcgi/report">\n'
            'Search String: <INPUT TYPE="text" NAME="SEARCH" VALUE="ib">\n'
            "<P>\n"
            '<INPUT TYPE="checkbox" NAME="USE_URL" VALUE="yes" CHECKED>'
            " URL<BR>\n"
            '<INPUT TYPE="checkbox" NAME="USE_TITLE" VALUE="yes" CHECKED>'
            " Title<BR>\n"
            '<INPUT TYPE="checkbox" NAME="USE_DESC" VALUE="yes">'
            " Description\n"
            '<P><SELECT NAME="DBFIELDS" SIZE=2 MULTIPLE>\n'
            '<OPTION VALUE="title" SELECTED> Title\n'
            '<OPTION VALUE="description">Description\n'
            "</SELECT>\n"
            '<P><INPUT TYPE="submit" VALUE="Submit Query">\n'
            "</FORM></BODY></HTML>\n"
        )

    # -- report: parse inputs, assemble SQL, print rows --------------------

    def _report_page(self, pairs: list[tuple[str, str]]) -> str:
        inputs: dict[str, str] = {}
        fields: list[str] = []
        for name, value in pairs:
            if name == "DBFIELDS":
                column = _ALLOWED_FIELDS.get(value)
                if column and column not in fields:
                    fields.append(column)
            else:
                inputs[name] = value
        search = inputs.get("SEARCH", "").replace("'", "''")
        conditions = []
        if inputs.get("USE_URL"):
            conditions.append(f"urldb.url LIKE '%{search}%'")
        if inputs.get("USE_TITLE"):
            conditions.append(f"urldb.title LIKE '%{search}%'")
        if inputs.get("USE_DESC"):
            conditions.append(f"urldb.description LIKE '%{search}%'")
        where = ""
        if conditions:
            where = " WHERE " + " OR ".join(conditions)
        columns = ["url"] + fields
        sql = (f"SELECT {', '.join(columns)} FROM urldb{where} "
               "ORDER BY title")
        out = [
            "<HTML><HEAD><TITLE>URL Query Result (raw CGI)</TITLE>"
            "</HEAD>\n<BODY><H1>URL Query Result</H1>\n<HR>\n",
            "Select any of the following to go to the specified URL:\n",
            "<UL>\n",
        ]
        conn = self.registry.connect(self.database)
        try:
            cursor = conn.execute(sql)
            for row in cursor:
                url = str(row[0])
                out.append(f'<LI> <A HREF="{url}">{url}</A>')
                for extra in row[1:]:
                    if extra is not None:
                        out.append(f" <BR>{escape_html(str(extra))}")
                out.append("\n")
        finally:
            conn.close()
        out.append("</UL>\n<HR>\n</BODY></HTML>\n")
        return "".join(out)


def developer_loc() -> int:
    """Non-blank source lines the application developer had to write.

    For this baseline that is the whole class — protocol parsing, SQL
    assembly and HTML printing are all application code, which is exactly
    the paper's point.
    """
    source = inspect.getsource(RawCgiUrlQuery)
    return sum(1 for line in source.splitlines()
               if line.strip() and not line.strip().startswith("#"))
