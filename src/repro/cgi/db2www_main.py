"""The DB2WWW executable: ``python -m repro.cgi.db2www_main``.

This is the stand-alone CGI entry point a web server spawns per request
(Figure 4's ``db2www.exe``).  It reads the CGI environment from the
process environment, the POST body from standard input, runs the macro
engine, and writes a CGI response (headers, blank line, page) to standard
output.

Configuration travels in environment variables the server administrator
sets (the 1996 equivalent was the DB2WWW initialisation file):

``REPRO_MACRO_DIR``
    Directory containing ``.d2w`` macro files.  Required.
``REPRO_DATABASE_<NAME>``
    Filesystem path of the SQLite database to register under the macro
    database name ``<NAME>`` (upper-cased in the variable; the macro's
    ``DATABASE`` value is matched case-sensitively against the original
    name, which is taken as upper-case here).
``REPRO_TRANSACTION_MODE``
    ``auto_commit`` (default) or ``single``.
``REPRO_QUERY_CACHE``
    Capacity of a per-process query-result cache (unset or ``0``
    disables it).  Pointless for process-per-request CGI — the cache
    dies with the process — but the app-server workers live across
    requests and share it profitably.
``REPRO_POOL_SIZE``
    Size of a connection pool attached to each registered database
    (unset or ``0`` means a fresh connection per request).  Same story:
    only long-lived processes benefit.
``REPRO_TRACE`` / ``REPRO_TRACE_LOG`` / ``REPRO_SLOW_QUERY_MS`` /
``REPRO_SLOW_QUERY_LOG``
    Observability settings (see :func:`repro.obs.configure_from_env`):
    the worker's tracer and sinks come from the same environment block,
    and the request's ``REPRO_TRACE_ID`` joins its spans to the
    dispatching server's trace.
"""

from __future__ import annotations

import os
import sys

from repro.cgi.environ import CgiEnvironment
from repro.cgi.gateway import Db2WwwProgram, error_response
from repro.cgi.request import CgiRequest
from repro.core.engine import EngineConfig, MacroEngine
from repro.core.macrofile import MacroLibrary
from repro.obs import configure_from_env
from repro.obs.trace import TRACER
from repro.sql.gateway import DatabaseRegistry
from repro.sql.querycache import QueryResultCache
from repro.sql.transactions import TransactionMode

_DB_PREFIX = "REPRO_DATABASE_"


def _int_env(env: dict[str, str], name: str) -> int:
    raw = env.get(name, "").strip()
    if not raw:
        return 0
    try:
        return max(0, int(raw))
    except ValueError as exc:
        raise RuntimeError(f"{name}: expected an integer, "
                           f"got {raw!r}") from exc


def build_program(env: dict[str, str]) -> Db2WwwProgram:
    """Construct the engine and library from server configuration."""
    macro_dir = env.get("REPRO_MACRO_DIR")
    if not macro_dir:
        raise RuntimeError("REPRO_MACRO_DIR is not configured")
    configure_from_env(env)
    registry = DatabaseRegistry()
    names = []
    for key, value in env.items():
        if key.startswith(_DB_PREFIX) and value:
            name = key[len(_DB_PREFIX):]
            registry.register_path(name, value)
            names.append(name)
    try:
        mode = TransactionMode.parse(
            env.get("REPRO_TRANSACTION_MODE", "auto_commit"))
    except ValueError as exc:
        raise RuntimeError(f"REPRO_TRANSACTION_MODE: {exc}") from exc
    pool_size = _int_env(env, "REPRO_POOL_SIZE")
    if pool_size:
        for name in names:
            registry.attach_pool(name, size=pool_size)
    cache_size = _int_env(env, "REPRO_QUERY_CACHE")
    cache = (QueryResultCache(max_entries=cache_size)
             if cache_size else None)
    engine = MacroEngine(registry,
                         config=EngineConfig(transaction_mode=mode,
                                             query_cache=cache))
    library = MacroLibrary(macro_dir)
    return Db2WwwProgram(engine, library)


def main(env: dict[str, str] | None = None,
         stdin: bytes | None = None) -> bytes:
    """Process one CGI request; returns the raw CGI output bytes."""
    env = dict(os.environ) if env is None else env
    environ = CgiEnvironment.from_dict(env)
    if stdin is None:
        length = environ.content_length
        stdin = sys.stdin.buffer.read(length) if length else b""
    request = CgiRequest(environ=environ, stdin=stdin)
    try:
        program = build_program(env)
    except RuntimeError as exc:
        return error_response(500, "Configuration Error",
                              str(exc)).serialize()
    # One coherent trace per subprocess run, under the caller's id.
    act = TRACER.begin("cgi", trace_id=environ.trace_id or None)
    try:
        response = program.run(request)
        response.drain()
        if act is not None:
            act.span.set("status", response.status)
    finally:
        if act is not None:
            act.finish()
    return response.serialize()


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    sys.stdout.buffer.write(main())
    sys.stdout.buffer.flush()
