"""The ``QUERY_STRING`` codec — form-urlencoding as of 1996.

Section 2.3: "all of the input sent by the Web client to the Web server
... is formatted to fit into a string and passed to a CGI application
using the QUERY_STRING environment variable."  The format is the
``application/x-www-form-urlencoded`` encoding of RFC 1738 / the HTML 2.0
forms specification:

* pairs are separated by ``&``, names from values by ``=``;
* spaces encode as ``+``;
* reserved and non-ASCII bytes encode as ``%XX`` (UTF-8 here; 1996
  practice was Latin-1, but the paper's Section 5 multi-byte discussion is
  best served by UTF-8 — see DESIGN.md);
* order is significant: repeated names are how multi-valued variables
  (the paper's ``DBFIELD``) travel, and
  :meth:`repro.core.variables.VariableStore.set_client_inputs` relies on
  arrival order.

The codec is deliberately order- and duplicate-preserving: pairs in, the
same pairs out.
"""

from __future__ import annotations

#: Characters that may appear raw in an encoded component (RFC 1738
#: "unreserved" minus ``+`` which means space here).
_SAFE = frozenset(
    "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789"
    "-_.*")

_HEX = "0123456789ABCDEF"


def encode_component(text: str) -> str:
    """Form-urlencode one name or value."""
    out: list[str] = []
    for byte in text.encode("utf-8"):
        ch = chr(byte)
        if ch in _SAFE:
            out.append(ch)
        elif ch == " ":
            out.append("+")
        else:
            out.append(f"%{_HEX[byte >> 4]}{_HEX[byte & 0xF]}")
    return "".join(out)


def decode_component(text: str) -> str:
    """Decode one form-urlencoded component.

    Lenient, as servers had to be: a ``%`` not followed by two hex digits
    is taken literally, and undecodable UTF-8 is replaced rather than
    rejected.
    """
    out = bytearray()
    i = 0
    n = len(text)
    while i < n:
        ch = text[i]
        if ch == "+":
            out.append(0x20)
            i += 1
        elif ch == "%" and i + 2 < n + 1 and _is_hex(text[i + 1:i + 3]):
            out.append(int(text[i + 1:i + 3], 16))
            i += 3
        else:
            out.extend(ch.encode("utf-8"))
            i += 1
    return out.decode("utf-8", "replace")


def _is_hex(pair: str) -> bool:
    return len(pair) == 2 and all(c in "0123456789abcdefABCDEF"
                                  for c in pair)


def encode_pairs(pairs: list[tuple[str, str]]) -> str:
    """Encode ``(name, value)`` pairs into a QUERY_STRING."""
    return "&".join(
        f"{encode_component(name)}={encode_component(value)}"
        for name, value in pairs)


def decode_pairs(query: str) -> list[tuple[str, str]]:
    """Decode a QUERY_STRING into ordered ``(name, value)`` pairs.

    A field without ``=`` decodes as ``(name, "")`` — consistent with the
    paper's rule that undefined and null-valued variables are identical.
    Empty fields (``a=1&&b=2``) are skipped.
    """
    pairs: list[tuple[str, str]] = []
    for field in query.split("&"):
        if not field:
            continue
        name, sep, value = field.partition("=")
        pairs.append((decode_component(name),
                      decode_component(value) if sep else ""))
    return pairs
