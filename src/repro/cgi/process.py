"""Process-per-request CGI: the faithful 1996 execution mode.

The CGI protocol starts "the CGI application as a separate process"
(Section 2.3).  :class:`SubprocessCgiRunner` does exactly that — it runs
``python -m repro.cgi.db2www_main`` (or any command line) with the CGI
environment variables set and the POST body on standard input, and parses
the process's standard output as the CGI response.

This mode exists so the end-to-end benchmark (PERF-E2E in DESIGN.md) can
measure what the paper's deployments actually paid per request: process
creation, interpreter start-up and a fresh database connection.  The
in-process dispatcher (:class:`repro.cgi.gateway.CgiGateway`) is the fast
path everything else uses.
"""

from __future__ import annotations

import os
import subprocess
import sys
from typing import Optional

from repro.cgi.request import CgiRequest, CgiResponse
from repro.errors import CgiProtocolError, DeadlineExceededError
from repro.resilience.deadline import Deadline


class SubprocessCgiRunner:
    """Runs a CGI program as a child process per request.

    ``argv`` is the command line; ``extra_env`` carries application
    configuration the web server would have set in its config file (for
    the DB2WWW main: ``REPRO_MACRO_DIR`` and ``REPRO_DATABASE_<NAME>``
    entries mapping macro database names to SQLite files).
    """

    def __init__(self, argv: list[str] | None = None, *,
                 extra_env: dict[str, str] | None = None,
                 timeout: float = 30.0):
        self.argv = argv or [sys.executable, "-m", "repro.cgi.db2www_main"]
        self.extra_env = dict(extra_env or {})
        self.timeout = timeout

    def run(self, request: CgiRequest, *,
            deadline: Optional[Deadline] = None) -> CgiResponse:
        """Run the child; a request deadline caps the child's timeout.

        The web server killed over-long CGI processes in 1996 too — the
        deadline just makes the budget explicit and shared with the rest
        of the request path.
        """
        env = dict(os.environ)
        env.update(self.extra_env)
        env.update(request.environ.to_dict())
        timeout = self.timeout
        if deadline is not None:
            deadline.check("CGI process")
            timeout = deadline.cap(timeout)
        try:
            proc = subprocess.run(
                self.argv, input=request.stdin, env=env,
                capture_output=True, timeout=timeout, check=False)
        except subprocess.TimeoutExpired as exc:
            if deadline is not None and deadline.expired:
                raise DeadlineExceededError(
                    f"CGI process exceeded the request deadline "
                    f"({timeout:.3g}s remaining at start)") from exc
            raise CgiProtocolError(
                f"CGI process exceeded {timeout:.3g}s") from exc
        if proc.returncode != 0:
            stderr = proc.stderr.decode("utf-8", "replace")
            raise CgiProtocolError(
                f"CGI process exited with {proc.returncode}: {stderr[:500]}")
        return CgiResponse.parse(proc.stdout)
