"""The CGI dispatcher and the DB2WWW CGI program.

This is the box labelled *DB2WWW* in Figures 4–6: a program the web server
invokes through CGI, receiving ``{macro-file}`` and ``{cmd}`` in
``PATH_INFO`` and the HTML input variables through ``QUERY_STRING`` or
standard input, and emitting a dynamically generated HTML page.
"""

from __future__ import annotations

import traceback
from typing import Callable, Optional, Protocol

from repro.cgi.request import CgiRequest, CgiResponse
from repro.core.engine import MacroCommand, MacroEngine, MacroResult
from repro.core.report import RowRenderer
from repro.core.macrofile import MacroLibrary, MacroNameError
from repro.errors import (
    CircuitOpenError,
    DeadlineExceededError,
    MacroError,
    MacroExecutionError,
    PoolExhaustedError,
    ReadOnlySqlError,
    ReproError,
    SQLError,
    UnknownCgiProgramError,
)
from repro.html.entities import escape_html
from repro.obs.trace import TRACER
from repro.overload.retryafter import retry_after_header


class CgiProgram(Protocol):
    """Anything the gateway can run as a CGI application."""

    def run(self, request: CgiRequest) -> CgiResponse:  # pragma: no cover
        ...


class CgiGateway:
    """The web server's table of installed CGI programs.

    Section 2.3: "any other executable program can be invoked in place of
    DB2WWW" — the gateway is name-indexed and program-agnostic, which is
    also how the baseline gateways of Section 6 get mounted for the
    comparison benchmarks.
    """

    def __init__(self) -> None:
        self._programs: dict[str, CgiProgram] = {}

    def install(self, name: str, program: CgiProgram) -> None:
        self._programs[name] = program

    def __contains__(self, name: str) -> bool:
        return name in self._programs

    def names(self) -> list[str]:
        return sorted(self._programs)

    def dispatch(self, name: str, request: CgiRequest) -> CgiResponse:
        """Run the named program; errors become 5xx pages, not crashes.

        A misbehaving CGI program must not take the server down — httpd
        turned exceptions (process failures) into "500 Internal Server
        Error" pages, and so do we, embedding the error class for the
        application developer.
        """
        program = self._programs.get(name)
        if program is None:
            raise UnknownCgiProgramError(f"no CGI program named {name!r}")
        try:
            return program.run(request)
        except ReadOnlySqlError as exc:
            return forbidden_response(exc)
        except (CircuitOpenError, PoolExhaustedError) as exc:
            return unavailable_response(exc)
        except DeadlineExceededError as exc:
            return error_response(504, "Gateway Timeout",
                                  f"{type(exc).__name__}: {exc}")
        except ReproError as exc:
            return error_response(500, "Internal Server Error",
                                  f"{type(exc).__name__}: {exc}")
        except Exception:  # noqa: BLE001 - server survival trumps purity
            return error_response(500, "Internal Server Error",
                                  traceback.format_exc())


def error_response(status: int, reason: str, detail: str, *,
                   extra_headers: list[tuple[str, str]] | None = None
                   ) -> CgiResponse:
    body = (
        f"<HTML><HEAD><TITLE>{status} {escape_html(reason)}</TITLE></HEAD>\n"
        f"<BODY><H1>{status} {escape_html(reason)}</H1>\n"
        f"<PRE>{escape_html(detail)}</PRE></BODY></HTML>\n"
    ).encode("utf-8")
    headers = [("Content-Type", "text/html")] + list(extra_headers or [])
    return CgiResponse(status=status, reason=reason,
                       headers=headers, body=body)


def forbidden_response(error: ReadOnlySqlError) -> CgiResponse:
    """403 for a write against a read-only engine (SQLSTATE 42501).

    Authorization, not availability: no ``Retry-After``, and the body
    carries the SQLSTATE so API clients can distinguish "you may not"
    from "try again".
    """
    return error_response(
        403, "Forbidden",
        f"SQLSTATE {error.sqlstate}: {error}")


def unavailable_response(error: SQLError) -> CgiResponse:
    """503 + ``Retry-After`` for breaker-open / pool-exhausted failures.

    These mean "the backend cannot take this request right now, try
    again shortly" — the 1996 equivalent was the browser's reload
    button; the header tells period and modern clients alike when.
    """
    return error_response(
        503, "Service Unavailable",
        f"{type(error).__name__}: {error}",
        extra_headers=[("Retry-After", retry_after_header(
            getattr(error, "retry_after", None)))])


class Db2WwwProgram:
    """The DB2 WWW Connection executable (Section 4).

    URL contract (the paper's invocation syntax)::

        /cgi-bin/db2www/{macro-file}/{cmd}[?name=val&...]

    ``{cmd}`` is ``input`` or ``report``.  The program loads the macro
    from its :class:`MacroLibrary`, runs the engine in the requested mode
    with the request's HTML input variables, and writes the generated
    page.  Errors map to period-appropriate pages: unknown macro → 404,
    bad command → 400, macro/SQL failures → 500 with the engine's message.
    """

    def __init__(self, engine: MacroEngine, library: MacroLibrary, *,
                 charset: str = "utf-8", stream: bool = False,
                 negotiate: Optional[
                     Callable[[CgiRequest], Optional[RowRenderer]]] = None,
                 result_hook: Optional[
                     Callable[[CgiRequest, MacroResult], None]] = None):
        self.engine = engine
        self.library = library
        self.charset = charset
        #: Content negotiation: called per request, may return a
        #: :class:`~repro.core.report.RowRenderer` to swap the page's
        #: presentation (the tenancy JSON API), or ``None`` for the
        #: default HTML pipeline.
        self.negotiate = negotiate
        #: Called with ``(request, result)`` once a page completes —
        #: buffered pages right after execution, streamed pages when the
        #: chunk stream closes (so ``result.rows`` is final).  Used for
        #: per-tenant accounting.
        self.result_hook = result_hook
        #: When true, report pages are produced as a chunk stream riding
        #: the live SQL cursor (close-delimited HTTP emission) instead of
        #: one buffered body — first-byte latency and peak memory stay
        #: flat as reports grow.  Errors raised before the first chunk
        #: still map to the error pages below; later failures surface
        #: mid-stream as a truncated page.
        self.stream = stream

    def run(self, request: CgiRequest) -> CgiResponse:
        components = request.path_components()
        if len(components) != 2:
            return error_response(
                400, "Bad Request",
                "expected PATH_INFO of the form /{macro-file}/{cmd}")
        macro_name, command_text = components
        try:
            # A leaf span: the parse span (cold loads only) attaches to
            # the request directly, which keeps the hot cached-load path
            # free of context-variable traffic.
            span = TRACER.leaf("macro.load")
            try:
                macro = self.library.load(macro_name)
            finally:
                if span is not None:
                    span.set("macro", macro_name)
                    span.finish()
        except MacroNameError as exc:
            return error_response(404, "Not Found", str(exc))
        except MacroError as exc:
            return error_response(500, "Macro Error", str(exc))
        try:
            command = MacroCommand.parse(command_text)
        except MacroExecutionError as exc:
            return error_response(400, "Bad Request", str(exc))
        inputs = request.input_pairs()
        renderer = (self.negotiate(request)
                    if self.negotiate is not None else None)
        if self.stream:
            return self._run_stream(request, macro, command, inputs,
                                    renderer)
        try:
            result = self.engine.execute(macro, command, inputs,
                                         row_renderer=renderer)
        except ReadOnlySqlError as exc:
            return forbidden_response(exc)
        except (CircuitOpenError, PoolExhaustedError) as exc:
            return unavailable_response(exc)
        except DeadlineExceededError as exc:
            return error_response(504, "Gateway Timeout",
                                  f"{type(exc).__name__}: {exc}")
        except (MacroError, MacroExecutionError, SQLError) as exc:
            return error_response(500, "Macro Execution Error",
                                  f"{type(exc).__name__}: {exc}")
        if self.result_hook is not None:
            self.result_hook(request, result)
        body = result.html.encode(self.charset, "replace")
        content_type = result.content_type
        if "charset=" not in content_type:
            content_type = f"{content_type}; charset={self.charset}"
        return CgiResponse(
            headers=[("Content-Type", content_type)], body=body)

    # -- streaming ---------------------------------------------------------

    def _run_stream(self, request: CgiRequest, macro,
                    command: MacroCommand,
                    inputs: list[tuple[str, str]],
                    renderer: Optional[RowRenderer] = None) -> CgiResponse:
        """Produce the page as a streaming response.

        The first substantive chunk is pulled eagerly: it forces macro
        processing up to the first output, so page-level failures (bad
        macro, unreachable database, missing section, a write against a
        read-only engine) surface here and map to the same error pages
        as the buffered path — and by then ``result.content_type`` is
        pinned, so the headers can go out before the rest of the body
        exists.  Whitespace-only chunks (the newline after an
        ``%HTML_REPORT{``) are buffered into the prefix rather than
        treated as first output, so they cannot commit a 200 ahead of a
        failure in the first SQL section.
        """
        stream = self.engine.execute_stream(macro, command, inputs,
                                            row_renderer=renderer)
        chunks = stream.chunks
        prefix: list[str] = []
        try:
            first = ""
            for chunk in chunks:
                if chunk and chunk.strip():
                    first = chunk
                    break
                if chunk:
                    prefix.append(chunk)
        except ReadOnlySqlError as exc:
            return forbidden_response(exc)
        except (CircuitOpenError, PoolExhaustedError) as exc:
            return unavailable_response(exc)
        except DeadlineExceededError as exc:
            return error_response(504, "Gateway Timeout",
                                  f"{type(exc).__name__}: {exc}")
        except (MacroError, MacroExecutionError, SQLError) as exc:
            return error_response(500, "Macro Execution Error",
                                  f"{type(exc).__name__}: {exc}")
        content_type = stream.result.content_type
        if "charset=" not in content_type:
            content_type = f"{content_type}; charset={self.charset}"
        return CgiResponse(
            headers=[("Content-Type", content_type)],
            body=("".join(prefix) + first).encode(self.charset,
                                                  "replace"),
            body_iter=self._encode_chunks(request, stream, chunks))

    def _encode_chunks(self, request, stream, chunks):
        try:
            for chunk in chunks:
                if chunk:
                    yield chunk.encode(self.charset, "replace")
        finally:
            close = getattr(chunks, "close", None)
            if close is not None:
                close()
            if self.result_hook is not None:
                # The stream has settled (drained or abandoned);
                # result.rows/sql_errors are as final as they will get.
                self.result_hook(request, stream.result)


class FunctionProgram:
    """Adapter: mount a plain function as a CGI program.

    Used by the hand-coded raw-CGI baseline (the intro's "stand-alone
    program" approach) and by tests.
    """

    def __init__(self, func: Callable[[CgiRequest], CgiResponse]):
        self.func = func

    def run(self, request: CgiRequest) -> CgiResponse:
        return self.func(request)
