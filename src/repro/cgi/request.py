"""The CGI request and response objects.

A :class:`CgiRequest` is what a CGI program receives (environment plus
standard-input body); a :class:`CgiResponse` is the parsed form of what it
writes to standard output — header lines, a blank line, then the page.
Both shapes are shared by the in-process dispatcher and the subprocess
runner so the two execution modes are interchangeable in tests and
benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Optional

from repro.cgi.environ import CgiEnvironment
from repro.cgi.query_string import decode_pairs
from repro.errors import CgiProtocolError

FORM_CONTENT_TYPE = "application/x-www-form-urlencoded"


@dataclass
class CgiRequest:
    """One request as seen by a CGI program."""

    environ: CgiEnvironment
    stdin: bytes = b""
    #: Optional per-request deadline budget
    #: (:class:`repro.resilience.deadline.Deadline`).  Process-local
    #: and deliberately *not* serialised: dispatchers use it to cap
    #: their own waits (worker checkout, channel checkout); a worker
    #: process re-derives its budget from engine configuration.
    deadline: Optional[object] = None

    def input_pairs(self) -> list[tuple[str, str]]:
        """The HTML input variables of Section 2.2, in arrival order.

        GET requests carry them in ``QUERY_STRING``; POST requests carry
        them on standard input (the two invocation arrows of Figure 4).
        A POST may *also* have a query string (Appendix A posts to
        ``...?name=val`` URLs); both sources contribute, query string
        first, matching httpd behaviour.
        """
        pairs = decode_pairs(self.environ.query_string)
        if self.environ.request_method.upper() == "POST":
            content_type = self.environ.content_type.split(";")[0].strip()
            if content_type in ("", FORM_CONTENT_TYPE):
                pairs += decode_pairs(self.stdin.decode("utf-8", "replace"))
        return pairs

    def path_components(self) -> list[str]:
        """Non-empty components of ``PATH_INFO``."""
        return [part for part in self.environ.path_info.split("/") if part]

    @property
    def trace_id(self) -> str:
        """The caller's trace id (empty when the request is untraced)."""
        return self.environ.trace_id


@dataclass
class CgiResponse:
    """Parsed CGI program output."""

    status: int = 200
    reason: str = "OK"
    headers: list[tuple[str, str]] = field(default_factory=list)
    body: bytes = b""
    #: Streaming body: when set, the page arrives as byte chunks and
    #: ``body`` is empty.  Transports that cannot stream call
    #: :meth:`drain` to fall back to a buffered body.
    body_iter: Optional[Iterator[bytes]] = None
    #: Exported span tree of the process that produced this response
    #: (:meth:`repro.obs.trace.Span.to_dict`).  App-server workers fill
    #: it so the dispatcher can graft their spans into the live request
    #: trace; ``None`` everywhere else.
    trace: Optional[dict] = None

    @property
    def streaming(self) -> bool:
        return self.body_iter is not None

    def drain(self) -> None:
        """Materialise a streaming body into ``body`` (no-op otherwise)."""
        if self.body_iter is not None:
            chunks, self.body_iter = self.body_iter, None
            self.body = self.body + b"".join(chunks)

    def header(self, name: str, default: str = "") -> str:
        folded = name.lower()
        for key, value in self.headers:
            if key.lower() == folded:
                return value
        return default

    @property
    def content_type(self) -> str:
        return self.header("Content-Type", "text/html")

    @property
    def text(self) -> str:
        charset = "utf-8"
        for param in self.content_type.split(";")[1:]:
            key, _, value = param.strip().partition("=")
            if key.lower() == "charset" and value:
                charset = value.strip('"')
        return self.body.decode(charset, "replace")

    # -- serialisation (the CGI stdout format) ---------------------------

    def serialize(self) -> bytes:
        lines = []
        if self.status != 200:
            lines.append(f"Status: {self.status} {self.reason}")
        has_content_type = any(
            key.lower() == "content-type" for key, _ in self.headers)
        if not has_content_type:
            lines.append("Content-Type: text/html")
        for key, value in self.headers:
            lines.append(f"{key}: {value}")
        head = ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1")
        return head + self.body

    @classmethod
    def parse(cls, output: bytes) -> "CgiResponse":
        """Parse raw CGI stdout into a response.

        The CGI/1.1 contract: header lines terminated by a blank line,
        then the body.  A ``Status:`` pseudo-header sets the HTTP status;
        a ``Location:`` header implies a 302.  Both LF and CRLF header
        termination are accepted (real 1996 CGI scripts emitted either).
        """
        for separator in (b"\r\n\r\n", b"\n\n"):
            index = output.find(separator)
            if index >= 0:
                head = output[:index]
                body = output[index + len(separator):]
                break
        else:
            raise CgiProtocolError(
                "CGI output contains no header/body separator")
        response = cls(body=body)
        for raw_line in head.replace(b"\r\n", b"\n").split(b"\n"):
            line = raw_line.decode("latin-1")
            if not line.strip():
                continue
            name, sep, value = line.partition(":")
            if not sep:
                raise CgiProtocolError(
                    f"malformed CGI header line: {line!r}")
            name = name.strip()
            value = value.strip()
            if name.lower() == "status":
                code, _, reason = value.partition(" ")
                try:
                    response.status = int(code)
                except ValueError as exc:
                    raise CgiProtocolError(
                        f"bad Status header: {value!r}") from exc
                response.reason = reason or "Status"
            else:
                response.headers.append((name, value))
        if response.status == 200 and response.header("Location"):
            response.status = 302
            response.reason = "Found"
        return response
