"""The common gateway interface substrate (Section 2.3, Figure 4).

Public surface:

* :class:`CgiEnvironment` / :func:`split_cgi_path` — CGI/1.1 meta-variables
* :class:`CgiRequest` / :class:`CgiResponse` — program-side I/O objects
* :class:`CgiGateway` — the server's program table and dispatcher
* :class:`Db2WwwProgram` — the paper's DB2WWW executable, in-process
* :class:`FunctionProgram` — mount a plain function as a CGI app
* :class:`SubprocessCgiRunner` — faithful process-per-request execution
* :mod:`repro.cgi.query_string` — the form-urlencoding codec
"""

from repro.cgi.environ import CgiEnvironment, split_cgi_path
from repro.cgi.gateway import (
    CgiGateway,
    Db2WwwProgram,
    FunctionProgram,
    error_response,
)
from repro.cgi.process import SubprocessCgiRunner
from repro.cgi.query_string import (
    decode_component,
    decode_pairs,
    encode_component,
    encode_pairs,
)
from repro.cgi.request import CgiRequest, CgiResponse

__all__ = [
    "CgiEnvironment",
    "CgiGateway",
    "CgiRequest",
    "CgiResponse",
    "Db2WwwProgram",
    "FunctionProgram",
    "SubprocessCgiRunner",
    "decode_component",
    "decode_pairs",
    "encode_component",
    "encode_pairs",
    "error_response",
    "split_cgi_path",
]
