"""CGI/1.1 environment construction — the server side of Figure 4.

"When presented with an URL that contains the name of what is known as a
CGI application ..., a Web server that implements the CGI protocol will
start the CGI application as a separate process while passing to this new
process the user input that the server received from the Web client along
with the URL" (Section 2.3).  That passing happens through environment
variables; this module builds them exactly as NCSA httpd 1.5 did for the
fields our gateway uses, so the same request can be dispatched in-process
or to a real subprocess without differences.
"""

from __future__ import annotations

from dataclasses import dataclass, field

SERVER_SOFTWARE = "repro-httpd/1.0"
GATEWAY_INTERFACE = "CGI/1.1"
SERVER_PROTOCOL = "HTTP/1.0"


@dataclass
class CgiEnvironment:
    """The CGI meta-variables for one request.

    ``script_name`` is the URL path up to and including the CGI program
    (``/cgi-bin/db2www``); ``path_info`` is the "extra path" after it
    (``/urlquery.d2w/report``) — exactly the split Figure 4 labels
    ``PATH_INFO=/macro-file/cmd``.
    """

    request_method: str = "GET"
    script_name: str = ""
    path_info: str = ""
    query_string: str = ""
    content_type: str = ""
    content_length: int = 0
    server_name: str = "localhost"
    server_port: int = 80
    remote_addr: str = "127.0.0.1"
    #: CGI/1.1 ``REMOTE_USER``: the identity the server authenticated
    #: (HTTP Basic auth), empty for anonymous requests.  Set by
    #: :class:`repro.security.auth.ProtectedProgram` and the tenancy
    #: layer; rides the environment across subprocess and app-server
    #: dispatch like every other meta-variable.
    remote_user: str = ""
    #: The tenant a multi-tenant request was routed to (see
    #: :mod:`repro.tenancy`).  Not a CGI/1.1 meta-variable — it rides as
    #: ``REPRO_TENANT`` the way ``REPRO_TRACE_ID`` does, so app-server
    #: workers and subprocess runs know which tenant they serve.
    tenant: str = ""
    http_headers: dict[str, str] = field(default_factory=dict)
    #: End-to-end trace id (see :mod:`repro.obs.trace`).  Not a CGI/1.1
    #: meta-variable — it rides the environment as ``REPRO_TRACE_ID``
    #: the way servers have always smuggled extras to CGI programs — so
    #: subprocess runs and app-server workers join the caller's trace.
    trace_id: str = ""

    def to_dict(self) -> dict[str, str]:
        """Render as the flat string environment a subprocess receives."""
        env = {
            "GATEWAY_INTERFACE": GATEWAY_INTERFACE,
            "SERVER_SOFTWARE": SERVER_SOFTWARE,
            "SERVER_PROTOCOL": SERVER_PROTOCOL,
            "SERVER_NAME": self.server_name,
            "SERVER_PORT": str(self.server_port),
            "REQUEST_METHOD": self.request_method,
            "SCRIPT_NAME": self.script_name,
            "PATH_INFO": self.path_info,
            "QUERY_STRING": self.query_string,
            "REMOTE_ADDR": self.remote_addr,
        }
        if self.content_type:
            env["CONTENT_TYPE"] = self.content_type
        if self.content_length:
            env["CONTENT_LENGTH"] = str(self.content_length)
        if self.remote_user:
            env["REMOTE_USER"] = self.remote_user
        if self.tenant:
            env["REPRO_TENANT"] = self.tenant
        if self.trace_id:
            env["REPRO_TRACE_ID"] = self.trace_id
        for name, value in self.http_headers.items():
            env["HTTP_" + name.upper().replace("-", "_")] = value
        return env

    @classmethod
    def from_dict(cls, env: dict[str, str]) -> "CgiEnvironment":
        """Reconstruct from a process environment (the CGI program side)."""
        headers = {
            key[5:].replace("_", "-").title(): value
            for key, value in env.items() if key.startswith("HTTP_")
        }
        return cls(
            request_method=env.get("REQUEST_METHOD", "GET"),
            script_name=env.get("SCRIPT_NAME", ""),
            path_info=env.get("PATH_INFO", ""),
            query_string=env.get("QUERY_STRING", ""),
            content_type=env.get("CONTENT_TYPE", ""),
            content_length=int(env.get("CONTENT_LENGTH", "0") or 0),
            server_name=env.get("SERVER_NAME", "localhost"),
            server_port=int(env.get("SERVER_PORT", "80") or 80),
            remote_addr=env.get("REMOTE_ADDR", "127.0.0.1"),
            remote_user=env.get("REMOTE_USER", ""),
            tenant=env.get("REPRO_TENANT", ""),
            http_headers=headers,
            trace_id=env.get("REPRO_TRACE_ID", ""),
        )


def split_cgi_path(url_path: str,
                   cgi_prefix: str = "/cgi-bin/") -> tuple[str, str, str]:
    """Split a URL path into ``(script_name, program, path_info)``.

    ``/cgi-bin/db2www/urlquery.d2w/report`` →
    ``("/cgi-bin/db2www", "db2www", "/urlquery.d2w/report")``.

    Raises :class:`ValueError` when the path is not under the CGI prefix.
    """
    if not url_path.startswith(cgi_prefix):
        raise ValueError(f"{url_path!r} is not under {cgi_prefix!r}")
    remainder = url_path[len(cgi_prefix):]
    program, slash, extra = remainder.partition("/")
    if not program:
        raise ValueError(f"no CGI program named in {url_path!r}")
    script_name = cgi_prefix + program
    path_info = slash + extra if slash else ""
    return script_name, program, path_info
