"""Workload generation and measurement for the benchmark harness."""

from repro.workloads.concurrent import (
    ConcurrentResult,
    run_concurrent,
    throughput_sweep,
)
from repro.workloads.generator import (
    replay_log,
    OrderSearchWorkload,
    UrlQueryWorkload,
    WorkloadRequest,
)
from repro.workloads.metrics import LatencyRecorder, Summary, percentile
from repro.workloads.openloop import (
    ArrivalSchedule,
    OpenLoopResult,
    OpenLoopSample,
    router_submitter,
    run_open_loop,
    zipf_shard_keys,
)
from repro.workloads.runner import (
    RunResult,
    db2www_request_builder,
    plain_request_builder,
    run_workload,
)

__all__ = [
    "ArrivalSchedule",
    "ConcurrentResult",
    "OpenLoopResult",
    "OpenLoopSample",
    "run_concurrent",
    "run_open_loop",
    "router_submitter",
    "throughput_sweep",
    "LatencyRecorder",
    "OrderSearchWorkload",
    "RunResult",
    "Summary",
    "UrlQueryWorkload",
    "replay_log",
    "WorkloadRequest",
    "db2www_request_builder",
    "percentile",
    "plain_request_builder",
    "run_workload",
    "zipf_shard_keys",
]
