"""Concurrent workload execution: the "tens of millions of users".

Figure 1's premise is many simultaneous clients.  The threaded runner
drives a CGI gateway from N worker threads over a shared request
stream, measuring aggregate throughput and the per-request latency
distribution under contention — the scaling half of the PERF story.

The in-process gateway plus SQLite serialises inside the database
connection, so the expected shape is throughput rising with a few
threads (overlapping non-SQL work) then flattening — which is also an
honest model of a 1996 single-disk server.
"""

from __future__ import annotations

import queue
import threading
from collections import Counter
from dataclasses import dataclass, field
from typing import Callable, Iterable

from repro.cgi.gateway import CgiGateway
from repro.cgi.request import CgiResponse
from repro.workloads.generator import WorkloadRequest
from repro.workloads.metrics import LatencyRecorder, Summary
from repro.workloads.runner import RequestBuilder


@dataclass
class ConcurrentResult:
    """Outcome of a threaded run."""

    summary: Summary
    threads: int
    responses: int
    failures: int
    #: HTTP status → occurrence count across all workers.
    status_counts: dict[int, int] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return self.failures == 0

    @property
    def success_rate(self) -> float:
        if not self.responses:
            return 0.0
        return 1.0 - self.failures / self.responses


def run_concurrent(gateway: CgiGateway,
                   requests: Iterable[WorkloadRequest],
                   builder: RequestBuilder, *,
                   threads: int = 4,
                   check: Callable[[CgiResponse], bool] | None = None
                   ) -> ConcurrentResult:
    """Drain the request stream from ``threads`` workers.

    Requests are pre-built (the builder is not assumed thread-safe) and
    distributed through a queue; each worker times its own dispatches
    into a private recorder, merged afterwards.  Wall-clock throughput
    uses the run's total elapsed time, so it reflects real parallelism,
    not summed thread time.
    """
    if check is None:
        def check(response: CgiResponse) -> bool:
            return response.status < 400

    work: queue.SimpleQueue = queue.SimpleQueue()
    total = 0
    for item in requests:
        work.put(builder(item))
        total += 1
    for _ in range(threads):
        work.put(None)  # poison pill per worker

    recorders = [LatencyRecorder() for _ in range(threads)]
    failures = [0] * threads
    statuses: list[Counter[int]] = [Counter() for _ in range(threads)]

    def worker(index: int) -> None:
        recorder = recorders[index]
        while True:
            item = work.get()
            if item is None:
                return
            program, cgi_request = item
            with recorder.time():
                response = gateway.dispatch(program, cgi_request)
            statuses[index][response.status] += 1
            if not check(response):
                failures[index] += 1

    merged = LatencyRecorder()
    merged.start_run()
    pool = [threading.Thread(target=worker, args=(i,), daemon=True)
            for i in range(threads)]
    for thread in pool:
        thread.start()
    for thread in pool:
        thread.join()
    merged.finish_run()
    for recorder in recorders:
        merged.samples.extend(recorder.samples)
    merged_statuses: Counter[int] = Counter()
    for counter in statuses:
        merged_statuses.update(counter)
    return ConcurrentResult(
        summary=merged.summary(), threads=threads,
        responses=total, failures=sum(failures),
        status_counts=dict(merged_statuses))


def throughput_sweep(gateway: CgiGateway,
                     make_requests: Callable[[], Iterable[WorkloadRequest]],
                     builder: RequestBuilder, *,
                     thread_counts: Iterable[int] = (1, 2, 4, 8)
                     ) -> list[ConcurrentResult]:
    """Run the same workload at several concurrency levels."""
    results = []
    for threads in thread_counts:
        results.append(run_concurrent(
            gateway, make_requests(), builder, threads=threads))
    return results
