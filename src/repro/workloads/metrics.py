"""Measurement collection for the benchmark harness.

pytest-benchmark times the hot loops; the workload runner additionally
needs request-level latency distributions and throughput for the
comparison experiments, collected here with no dependencies beyond the
standard library.  :class:`CacheReport` gives the query-result cache's
counters (see :mod:`repro.sql.querycache`) the same tabular surface the
latency summaries have, so workload reports can show hit rates next to
throughput; :class:`ResilienceReport` does the same for the retry /
breaker / fault-injection counters of :mod:`repro.resilience`.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field


@dataclass
class Summary:
    """Latency/throughput summary of one workload run."""

    count: int
    total_seconds: float
    mean_ms: float
    stdev_ms: float
    min_ms: float
    p50_ms: float
    p95_ms: float
    p99_ms: float
    max_ms: float

    @property
    def throughput_rps(self) -> float:
        if self.total_seconds <= 0:
            return 0.0
        return self.count / self.total_seconds

    def row(self, label: str) -> str:
        """One fixed-width table row for harness output."""
        return (f"{label:<14} {self.count:>6} "
                f"{self.mean_ms:>9.3f} {self.p50_ms:>9.3f} "
                f"{self.p95_ms:>9.3f} {self.p99_ms:>9.3f} "
                f"{self.throughput_rps:>10.1f}")

    @staticmethod
    def header() -> str:
        return (f"{'gateway':<14} {'n':>6} {'mean_ms':>9} {'p50_ms':>9} "
                f"{'p95_ms':>9} {'p99_ms':>9} {'req_per_s':>10}")


@dataclass
class CacheReport:
    """Query-result-cache counters in workload-report form.

    Build one from :meth:`QueryResultCache.stats` snapshots; subtracting
    a "before" snapshot isolates one workload's contribution.
    """

    hits: int = 0
    misses: int = 0
    stores: int = 0
    evictions: int = 0
    invalidations: int = 0
    entries: int = 0

    @classmethod
    def from_stats(cls, stats: dict[str, int]) -> "CacheReport":
        return cls(**{key: stats.get(key, 0)
                      for key in ("hits", "misses", "stores", "evictions",
                                  "invalidations", "entries")})

    def delta(self, before: "CacheReport") -> "CacheReport":
        """Counters accumulated since ``before`` (entries stays absolute)."""
        return CacheReport(
            hits=self.hits - before.hits,
            misses=self.misses - before.misses,
            stores=self.stores - before.stores,
            evictions=self.evictions - before.evictions,
            invalidations=self.invalidations - before.invalidations,
            entries=self.entries)

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0

    def row(self, label: str) -> str:
        """One fixed-width table row (pairs with :meth:`header`)."""
        return (f"{label:<14} {self.hits:>8} {self.misses:>8} "
                f"{self.stores:>8} {self.evictions:>9} "
                f"{self.invalidations:>12} {self.hit_rate:>8.1%}")

    @staticmethod
    def header() -> str:
        return (f"{'cache':<14} {'hits':>8} {'misses':>8} {'stores':>8} "
                f"{'evictions':>9} {'invalidated':>12} {'hit_rate':>8}")


@dataclass
class ResilienceReport:
    """Retry/breaker/fault counters in workload-report form.

    Build one from the stats surfaces of the resilience layer —
    ``DatabaseRegistry.resilience_stats()`` merged with a
    :class:`~repro.resilience.faults.FaultInjector`'s counters and the
    engine results' retry totals — so a degraded-backend run can print
    failure handling next to throughput.
    """

    retries: int = 0
    injected_total: int = 0
    breaker_opens: int = 0
    breaker_rejections: int = 0
    breaker_probes: int = 0
    pool_evicted: int = 0
    deadline_exceeded: int = 0

    @classmethod
    def from_stats(cls, stats: dict[str, int]) -> "ResilienceReport":
        return cls(**{key: stats.get(key, 0)
                      for key in ("retries", "injected_total",
                                  "breaker_opens", "breaker_rejections",
                                  "breaker_probes", "pool_evicted",
                                  "deadline_exceeded")})

    def delta(self, before: "ResilienceReport") -> "ResilienceReport":
        """Counters accumulated since ``before``."""
        return ResilienceReport(
            retries=self.retries - before.retries,
            injected_total=self.injected_total - before.injected_total,
            breaker_opens=self.breaker_opens - before.breaker_opens,
            breaker_rejections=(self.breaker_rejections
                                - before.breaker_rejections),
            breaker_probes=self.breaker_probes - before.breaker_probes,
            pool_evicted=self.pool_evicted - before.pool_evicted,
            deadline_exceeded=(self.deadline_exceeded
                               - before.deadline_exceeded))

    def row(self, label: str) -> str:
        """One fixed-width table row (pairs with :meth:`header`)."""
        return (f"{label:<14} {self.injected_total:>8} {self.retries:>8} "
                f"{self.breaker_opens:>6} {self.breaker_rejections:>9} "
                f"{self.pool_evicted:>8} {self.deadline_exceeded:>9}")

    @staticmethod
    def header() -> str:
        return (f"{'resilience':<14} {'faults':>8} {'retries':>8} "
                f"{'opens':>6} {'rejected':>9} {'evicted':>8} "
                f"{'deadline':>9}")


@dataclass
class WorkerReport:
    """App-server worker-pool counters in workload-report form.

    Build one from :meth:`AppServerDispatcher.stats` snapshots (the
    aggregate keys; the per-slot ``worker_N_*`` keys are ignored) so a
    gateway workload can print pool health next to throughput.
    """

    workers: int = 0
    requests: int = 0
    recycles: int = 0
    crashes: int = 0
    crash_retries: int = 0
    busy_timeouts: int = 0
    #: Goodput (useful 200s per second) by target shard, for sharded
    #: workloads — built from
    #: :meth:`~repro.workloads.openloop.OpenLoopResult.per_shard_goodput`
    #: so skewed runs can show the hot shard next to pool health.
    per_shard: dict[str, float] = field(default_factory=dict)

    @classmethod
    def from_stats(cls, stats: dict[str, int]) -> "WorkerReport":
        return cls(**{key: stats.get(key, 0)
                      for key in ("workers", "requests", "recycles",
                                  "crashes", "crash_retries",
                                  "busy_timeouts")})

    def delta(self, before: "WorkerReport") -> "WorkerReport":
        """Counters accumulated since ``before`` (pool size is a gauge,
        not a counter, so the current value is kept)."""
        return WorkerReport(
            workers=self.workers,
            requests=self.requests - before.requests,
            recycles=self.recycles - before.recycles,
            crashes=self.crashes - before.crashes,
            crash_retries=self.crash_retries - before.crash_retries,
            busy_timeouts=self.busy_timeouts - before.busy_timeouts,
            per_shard=dict(self.per_shard))

    def row(self, label: str) -> str:
        """One fixed-width table row (pairs with :meth:`header`)."""
        return (f"{label:<14} {self.workers:>7} {self.requests:>8} "
                f"{self.recycles:>8} {self.crashes:>7} "
                f"{self.crash_retries:>8} {self.busy_timeouts:>8}")

    @staticmethod
    def header() -> str:
        return (f"{'pool':<14} {'workers':>7} {'requests':>8} "
                f"{'recycles':>8} {'crashes':>7} {'replays':>8} "
                f"{'timeouts':>8}")

    def shard_rows(self) -> list[str]:
        """Per-shard goodput lines (empty for unsharded workloads)."""
        if not self.per_shard:
            return []
        width = max(len(shard) or 1 for shard in self.per_shard)
        return [f"{(shard or '-'):<{width}}  {goodput:>8.1f} good_rps"
                for shard, goodput in sorted(self.per_shard.items())]


@dataclass
class LatencyReport:
    """A server-side latency histogram in workload-report form.

    Build one from a :meth:`repro.obs.metrics.Histogram.snapshot` dict,
    or from the flattened ``<name>_count``/``<name>_p50``/… keys the
    registry writes into the access log's ``#stats`` trailer — so
    ``repro stats`` and workload harnesses print the server's own
    latency numbers in the same table shape as client-side summaries.
    """

    count: int = 0
    mean_ms: float = 0.0
    p50_ms: float = 0.0
    p95_ms: float = 0.0
    p99_ms: float = 0.0

    @classmethod
    def from_snapshot(cls, snap: dict) -> "LatencyReport":
        return cls(count=int(snap.get("count", 0)),
                   mean_ms=float(snap.get("mean", 0.0)),
                   p50_ms=float(snap.get("p50", 0.0)),
                   p95_ms=float(snap.get("p95", 0.0)),
                   p99_ms=float(snap.get("p99", 0.0)))

    @classmethod
    def from_flat(cls, flat: dict, name: str) -> "LatencyReport":
        """Rebuild from ``<name>_count``/``<name>_p50``/… flat keys."""
        return cls(count=int(flat.get(f"{name}_count", 0)),
                   mean_ms=float(flat.get(f"{name}_mean", 0.0)),
                   p50_ms=float(flat.get(f"{name}_p50", 0.0)),
                   p95_ms=float(flat.get(f"{name}_p95", 0.0)),
                   p99_ms=float(flat.get(f"{name}_p99", 0.0)))

    @classmethod
    def families(cls, flat: dict) -> list[str]:
        """Histogram names present in a flattened stats dict."""
        return sorted(key[:-len("_p50")] for key in flat
                      if key.endswith("_p50")
                      and f"{key[:-len('_p50')]}_count" in flat)

    def row(self, label: str) -> str:
        """One fixed-width table row (pairs with :meth:`header`)."""
        return (f"{label:<28} {self.count:>7} {self.mean_ms:>9.3f} "
                f"{self.p50_ms:>9.3f} {self.p95_ms:>9.3f} "
                f"{self.p99_ms:>9.3f}")

    @staticmethod
    def header() -> str:
        return (f"{'histogram':<28} {'n':>7} {'mean_ms':>9} "
                f"{'p50_ms':>9} {'p95_ms':>9} {'p99_ms':>9}")


@dataclass
class LatencyRecorder:
    """Accumulates per-request latencies (seconds)."""

    samples: list[float] = field(default_factory=list)
    started_at: float | None = None
    finished_at: float | None = None

    # -- collection -----------------------------------------------------

    def start_run(self) -> None:
        self.started_at = time.perf_counter()

    def finish_run(self) -> None:
        self.finished_at = time.perf_counter()

    def record(self, seconds: float) -> None:
        self.samples.append(seconds)

    def time(self):
        """Context manager timing one request."""
        return _Timer(self)

    # -- summarisation -----------------------------------------------------

    def summary(self) -> Summary:
        if not self.samples:
            raise ValueError("no samples recorded")
        ordered = sorted(self.samples)
        count = len(ordered)
        mean = sum(ordered) / count
        variance = (sum((s - mean) ** 2 for s in ordered) / count
                    if count > 1 else 0.0)
        if self.started_at is not None and self.finished_at is not None:
            total = self.finished_at - self.started_at
        else:
            total = sum(ordered)
        return Summary(
            count=count,
            total_seconds=total,
            mean_ms=mean * 1e3,
            stdev_ms=math.sqrt(variance) * 1e3,
            min_ms=ordered[0] * 1e3,
            p50_ms=percentile(ordered, 0.50) * 1e3,
            p95_ms=percentile(ordered, 0.95) * 1e3,
            p99_ms=percentile(ordered, 0.99) * 1e3,
            max_ms=ordered[-1] * 1e3,
        )


def percentile(ordered: list[float], fraction: float) -> float:
    """Linear-interpolated percentile of pre-sorted samples."""
    if not ordered:
        raise ValueError("no samples")
    if len(ordered) == 1:
        return ordered[0]
    rank = fraction * (len(ordered) - 1)
    low = int(math.floor(rank))
    high = int(math.ceil(rank))
    if low == high:
        return ordered[low]
    weight = rank - low
    return ordered[low] * (1 - weight) + ordered[high] * weight


class _Timer:
    def __init__(self, recorder: LatencyRecorder):
        self.recorder = recorder
        self._t0 = 0.0

    def __enter__(self) -> "_Timer":
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.recorder.record(time.perf_counter() - self._t0)
