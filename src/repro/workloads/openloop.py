"""Open-loop load generation: arrival rates, not concurrency levels.

The closed-loop harness (:mod:`repro.workloads.runner`,
:mod:`repro.workloads.concurrent`) models N users who each wait for
their response before sending again — which means a slow server
*throttles its own load test*: latency goes up, the offered rate goes
down, and the measured percentiles flatter the server.  That is the
coordinated-omission trap, and it hides exactly the regime overload
control exists for.

An open-loop generator fixes the arrival **schedule** up front — request
``i`` is *due* at ``start + offsets[i]`` whether or not the server has
answered request ``i-1`` — and measures every latency from the *intended*
send time.  Time a request spends waiting for a free generator worker
counts against the server, not against nobody.  A million-user public
does not pace itself on your response times; neither does this.

Abandonment is part of the model too: a real client gives up.  With
``give_up_after`` set, an arrival that cannot even start within that
window is recorded as a failure at its (already catastrophic) waiting
latency instead of being submitted late — which both matches user
behaviour and bounds the wall-clock of a collapse run (a naive server at
10x capacity would otherwise take 10x the schedule to drain).
"""

from __future__ import annotations

import random
import threading
import time
from collections import Counter
from dataclasses import dataclass
from typing import Callable, Iterator, Optional, Sequence

from repro.workloads.metrics import percentile


@dataclass(frozen=True)
class ArrivalSchedule:
    """A fixed sequence of arrival offsets (seconds from run start).

    The schedule is computed *before* the run and never adjusted by
    server behaviour — that invariance is what makes the harness
    coordinated-omission-safe.
    """

    offsets: tuple[float, ...]

    @classmethod
    def poisson(cls, rate: float, duration: float, *,
                seed: int = 0) -> "ArrivalSchedule":
        """Poisson arrivals at ``rate``/s for ``duration`` seconds.

        Exponential inter-arrival gaps — the memoryless process a large
        independent public actually generates, bursts included.
        """
        if rate <= 0:
            raise ValueError("rate must be positive")
        rng = random.Random(seed)
        offsets: list[float] = []
        at = rng.expovariate(rate)
        while at < duration:
            offsets.append(at)
            at += rng.expovariate(rate)
        return cls(offsets=tuple(offsets))

    @classmethod
    def uniform(cls, rate: float, duration: float) -> "ArrivalSchedule":
        """Evenly spaced arrivals at ``rate``/s for ``duration`` seconds."""
        if rate <= 0:
            raise ValueError("rate must be positive")
        count = int(rate * duration)
        gap = 1.0 / rate
        return cls(offsets=tuple(i * gap for i in range(count)))

    @property
    def duration(self) -> float:
        return self.offsets[-1] if self.offsets else 0.0

    @property
    def rate(self) -> float:
        if not self.offsets or self.duration <= 0:
            return 0.0
        return len(self.offsets) / self.duration

    def __len__(self) -> int:
        return len(self.offsets)

    def __iter__(self) -> Iterator[float]:
        return iter(self.offsets)


def zipf_shard_keys(keys: Sequence[str], count: int, *,
                    skew: float = 1.0, seed: int = 0) -> list[str]:
    """Pre-drawn Zipf-skewed shard-key assignments for ``count`` arrivals.

    Real key popularity is never uniform — a few customers are most of
    the traffic — so the shard bench needs a skew knob to show hot-shard
    behaviour.  Key ``keys[rank]`` is drawn with weight
    ``1 / (rank + 1) ** skew``: ``skew=0`` is uniform, ``skew=1``
    classic Zipf, higher values concentrate harder.  Drawn up front
    (seeded) so the assignment is part of the fixed schedule, like the
    arrival offsets.
    """
    if not keys:
        raise ValueError("zipf_shard_keys needs at least one key")
    if skew < 0:
        raise ValueError("skew must be non-negative")
    rng = random.Random(seed)
    weights = [1.0 / (rank + 1) ** skew for rank in range(len(keys))]
    return rng.choices(list(keys), weights=weights, k=count)


@dataclass(frozen=True)
class OpenLoopSample:
    """One scheduled arrival's outcome."""

    index: int
    intended: float        # offset from run start the request was due
    latency: float         # seconds from *intended* time to completion
    status: int            # HTTP status; 0 when abandoned unsubmitted
    abandoned: bool = False
    #: The shard this arrival targeted ("" when the workload is not
    #: sharded); lets per-shard goodput fall out of one sample list.
    shard: str = ""


@dataclass
class OpenLoopResult:
    """Everything measured by one open-loop run."""

    samples: list[OpenLoopSample]
    duration: float        # scheduled duration (for rate arithmetic)
    elapsed: float         # wall-clock the run actually took

    @property
    def attempted(self) -> int:
        return len(self.samples)

    @property
    def abandoned(self) -> int:
        return sum(1 for s in self.samples if s.abandoned)

    @property
    def status_counts(self) -> dict[int, int]:
        return dict(Counter(s.status for s in self.samples))

    def successes(self, *,
                  success: Callable[[OpenLoopSample], bool] | None = None,
                  within: Optional[float] = None) -> int:
        """Completed-and-useful arrivals.

        Default success is "answered 200"; ``within`` additionally
        requires the intended-time latency under a budget, which is the
        goodput definition — a correct answer after the user left is
        not good.
        """
        if success is None:
            def success(sample: OpenLoopSample) -> bool:
                return not sample.abandoned and sample.status == 200
        count = 0
        for sample in self.samples:
            if not success(sample):
                continue
            if within is not None and sample.latency > within:
                continue
            count += 1
        return count

    def goodput_rps(self, **kwargs) -> float:
        """Useful completions per scheduled second (see
        :meth:`successes` for the success definition)."""
        if self.duration <= 0:
            return 0.0
        return self.successes(**kwargs) / self.duration

    def per_shard_goodput(self, *,
                          within: Optional[float] = None
                          ) -> dict[str, float]:
        """Goodput (200s/s, optionally within a latency budget) broken
        down by the shard each arrival targeted.

        Under Zipf skew this is the whole point: aggregate goodput can
        look healthy while the hot shard is drowning.  Unlabelled
        samples land under ``""``.
        """
        if self.duration <= 0:
            return {}
        counts: dict[str, int] = {}
        for sample in self.samples:
            if sample.abandoned or sample.status != 200:
                continue
            if within is not None and sample.latency > within:
                continue
            counts[sample.shard] = counts.get(sample.shard, 0) + 1
        return {shard: count / self.duration
                for shard, count in sorted(counts.items())}

    def latency_ms(self, fraction: float, *,
                   success_only: bool = False) -> float:
        """Intended-time latency percentile in milliseconds.

        Abandoned arrivals count at their waiting latency (they *are*
        the tail — dropping them would be coordinated omission through
        the back door); ``success_only`` restricts to 200s for
        per-class SLO checks.
        """
        values = sorted(s.latency for s in self.samples
                        if not success_only
                        or (not s.abandoned and s.status == 200))
        if not values:
            return 0.0
        return percentile(values, fraction) * 1e3


def run_open_loop(submit: Callable[[int], int],
                  schedule: Sequence[float] | ArrivalSchedule, *,
                  workers: int = 32,
                  give_up_after: Optional[float] = None,
                  shard_of: Callable[[int], str] | None = None,
                  clock: Callable[[], float] = time.monotonic,
                  sleep: Callable[[float], None] = time.sleep
                  ) -> OpenLoopResult:
    """Drive ``submit`` on a fixed arrival schedule.

    ``submit(index)`` performs request ``index`` synchronously and
    returns its HTTP status.  ``workers`` bounds the generator's own
    concurrency — when all workers are stuck waiting on a slow server,
    due arrivals queue and their wait is charged as latency, exactly as
    a real user's would be.  An exception from ``submit`` records
    status 599 rather than killing the run.  ``shard_of(index)`` (when
    given) labels each sample with the shard its arrival targeted —
    abandoned arrivals included, since the hot shard's abandonments are
    exactly what a skewed run needs to attribute.
    """
    offsets = list(schedule)
    duration = (schedule.duration if isinstance(schedule, ArrivalSchedule)
                else (max(offsets) if offsets else 0.0))
    samples: list[Optional[OpenLoopSample]] = [None] * len(offsets)
    cursor = [0]
    lock = threading.Lock()
    start = clock()

    def worker() -> None:
        while True:
            with lock:
                index = cursor[0]
                if index >= len(offsets):
                    return
                cursor[0] += 1
            intended = offsets[index]
            now = clock() - start
            if now < intended:
                sleep(intended - now)
                now = clock() - start
            late_by = now - intended
            shard = shard_of(index) if shard_of is not None else ""
            if give_up_after is not None and late_by >= give_up_after:
                # The client is gone; the request was never sent.  Its
                # latency is the wait it had already suffered.
                samples[index] = OpenLoopSample(
                    index=index, intended=intended, latency=late_by,
                    status=0, abandoned=True, shard=shard)
                continue
            try:
                status = int(submit(index))
            except Exception:
                status = 599
            samples[index] = OpenLoopSample(
                index=index, intended=intended,
                latency=(clock() - start) - intended, status=status,
                shard=shard)

    threads = [threading.Thread(target=worker, daemon=True,
                                name=f"openloop-{i}")
               for i in range(max(1, workers))]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    elapsed = clock() - start
    return OpenLoopResult(
        samples=[s for s in samples if s is not None],
        duration=duration, elapsed=elapsed)


def router_submitter(router, build_request: Callable[[int], object], *,
                     remote_addr: str = "127.0.0.1",
                     client_key: Callable[[int], str] | None = None
                     ) -> Callable[[int], int]:
    """A ``submit`` callable that drives a :class:`~repro.http.router.
    Router` in-process.

    ``build_request(index)`` supplies the :class:`HttpRequest`;
    ``client_key`` (when given) varies the remote address per arrival so
    weighted-fair queueing across clients is exercised.  Streaming
    responses are drained — an unread stream would hold engine
    resources and never settle its accounting.
    """

    def submit(index: int) -> int:
        request = build_request(index)
        addr = client_key(index) if client_key is not None else remote_addr
        response = router.handle(request, remote_addr=addr)
        if response.streaming and response.body_iter is not None:
            try:
                for _ in response.body_iter:
                    pass
            finally:
                close = getattr(response.body_iter, "close", None)
                if close is not None:
                    close()
        return response.status

    return submit
