"""Workload execution: drive a CGI gateway with a request stream.

The runner speaks the CGI request shape directly (not HTTP) so that what
it measures is gateway work — macro processing, SQL, page generation —
with the transport held constant across the five gateways of the CMP6
comparison.  An HTTP-level variant is provided for the end-to-end
experiment.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Callable, Iterable

from repro.cgi.environ import CgiEnvironment
from repro.cgi.gateway import CgiGateway
from repro.cgi.query_string import encode_pairs
from repro.cgi.request import CgiRequest, CgiResponse
from repro.workloads.generator import WorkloadRequest
from repro.workloads.metrics import LatencyRecorder, Summary

#: Builds the CGI request for one workload request, given the gateway
#: style's URL layout.  Returns (program_name, CgiRequest).
RequestBuilder = Callable[[WorkloadRequest], tuple[str, CgiRequest]]


def db2www_request_builder(
        macro_name: str,
        program: str = "db2www") -> RequestBuilder:
    """Request builder for DB2WWW-style ``/{macro}/{cmd}`` URLs."""

    def build(item: WorkloadRequest) -> tuple[str, CgiRequest]:
        body = encode_pairs(list(item.pairs)).encode("utf-8")
        environ = CgiEnvironment(
            request_method="POST" if item.is_report else "GET",
            script_name=f"/cgi-bin/{program}",
            path_info=f"/{macro_name}/{item.command}",
            content_type="application/x-www-form-urlencoded",
            content_length=len(body) if item.is_report else 0,
        )
        return program, CgiRequest(environ=environ,
                                   stdin=body if item.is_report else b"")

    return build


def plain_request_builder(program: str,
                          report_path: str = "/report",
                          input_path: str = "/input") -> RequestBuilder:
    """Request builder for the baseline gateways' ``/{cmd}`` URLs."""

    def build(item: WorkloadRequest) -> tuple[str, CgiRequest]:
        path = report_path if item.is_report else input_path
        environ = CgiEnvironment(
            request_method="GET",
            script_name=f"/cgi-bin/{program}",
            path_info=path,
            query_string=encode_pairs(list(item.pairs)),
        )
        return program, CgiRequest(environ=environ)

    return build


@dataclass
class RunResult:
    """Outcome of one workload run."""

    summary: Summary
    responses: int
    failures: int
    #: HTTP status → occurrence count, so a degraded-backend run can
    #: distinguish fast 503 shedding from real 500 breakage.
    status_counts: dict[int, int] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return self.failures == 0

    @property
    def success_rate(self) -> float:
        if not self.responses:
            return 0.0
        return 1.0 - self.failures / self.responses


def run_workload(gateway: CgiGateway,
                 requests: Iterable[WorkloadRequest],
                 builder: RequestBuilder, *,
                 check: Callable[[CgiResponse], bool] | None = None
                 ) -> RunResult:
    """Execute every request, timing each dispatch.

    ``check`` validates responses (default: HTTP status < 400); failing
    responses are counted, not raised, so a comparison run reports all
    gateways even if one misbehaves.
    """
    recorder = LatencyRecorder()
    failures = 0
    count = 0
    statuses: Counter[int] = Counter()
    if check is None:
        def check(response: CgiResponse) -> bool:
            return response.status < 400
    recorder.start_run()
    for item in requests:
        program, cgi_request = builder(item)
        with recorder.time():
            response = gateway.dispatch(program, cgi_request)
        count += 1
        statuses[response.status] += 1
        if not check(response):
            failures += 1
    recorder.finish_run()
    return RunResult(summary=recorder.summary(), responses=count,
                     failures=failures, status_counts=dict(statuses))
