"""Workload generation: the synthetic "Web public" of Figure 1.

Produces deterministic request streams for the benchmark harness — mixes
of input-mode page fetches and report-mode form submissions with varying
search terms, checkbox combinations and report-field selections, the
request population a deployed URL-query application would see.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Iterator

#: Search terms skewed the way real query logs are: short common
#: fragments dominate, with a tail of selective and empty searches.
_COMMON_TERMS = ["ib", "web", "data", "net", "soft", "www"]
_RARE_TERMS = ["multimedia", "cyberdyne", "lantern", "zzz-nothing"]


@dataclass(frozen=True)
class WorkloadRequest:
    """One logical request against a gateway application."""

    command: str                      # "input" | "report"
    pairs: tuple[tuple[str, str], ...] = ()

    @property
    def is_report(self) -> bool:
        return self.command == "report"


@dataclass
class UrlQueryWorkload:
    """A seeded request mix for the Appendix A application.

    ``report_fraction`` controls how many requests submit the form versus
    fetch it (a user fetches once, often submits several refinements).
    """

    seed: int = 96
    report_fraction: float = 0.8
    rng: random.Random = field(init=False, repr=False)

    def __post_init__(self) -> None:
        self.rng = random.Random(self.seed)

    def requests(self, count: int) -> Iterator[WorkloadRequest]:
        for _ in range(count):
            yield self.next_request()

    def next_request(self) -> WorkloadRequest:
        if self.rng.random() >= self.report_fraction:
            return WorkloadRequest(command="input")
        return WorkloadRequest(command="report",
                               pairs=tuple(self._report_pairs()))

    def _report_pairs(self) -> list[tuple[str, str]]:
        rng = self.rng
        roll = rng.random()
        if roll < 0.70:
            term = rng.choice(_COMMON_TERMS)
        elif roll < 0.90:
            term = rng.choice(_RARE_TERMS)
        else:
            term = ""  # Figure 3's empty search
        pairs: list[tuple[str, str]] = [("SEARCH", term)]
        checked_any = False
        for flag in ("USE_URL", "USE_TITLE", "USE_DESC"):
            if rng.random() < 0.55:
                pairs.append((flag, "yes"))
                checked_any = True
        if not checked_any and rng.random() < 0.5:
            pairs.append(("USE_TITLE", "yes"))
        pairs.append(("DBFIELDS", "title"))
        if rng.random() < 0.4:
            pairs.append(("DBFIELDS", "description"))
        if rng.random() < 0.1:
            pairs.append(("SHOWSQL", "YES"))
        return pairs


@dataclass
class OrderSearchWorkload:
    """A seeded request mix for the Section 3.1.3 order-search macro."""

    seed: int = 96
    customers: int = 40

    def __post_init__(self) -> None:
        self.rng = random.Random(self.seed)

    def requests(self, count: int) -> Iterator[WorkloadRequest]:
        for _ in range(count):
            pairs: list[tuple[str, str]] = []
            roll = self.rng.random()
            if roll < 0.4:   # customer only
                pairs.append(("cust_inp", str(self._custid())))
            elif roll < 0.7:  # product only
                pairs.append(("prod_inp", self._product_prefix()))
            elif roll < 0.9:  # both (the paper's worked case)
                pairs.append(("cust_inp", str(self._custid())))
                pairs.append(("prod_inp", self._product_prefix()))
            # else: neither — the no-WHERE-clause case
            yield WorkloadRequest(command="report", pairs=tuple(pairs))

    def _custid(self) -> int:
        return 10100 + self.rng.randrange(self.customers) * 100

    def _product_prefix(self) -> str:
        return self.rng.choice(
            ["bike", "helm", "tent", "ka", "b", "ski"])


def replay_log(entries) -> Iterator[WorkloadRequest]:
    """Turn access-log entries back into replayable workload requests.

    Only DB2WWW-style requests (``/cgi-bin/<prog>/<macro>/<cmd>``) are
    replayed; static hits and other programs are skipped.  Query-string
    variables are decoded back into input pairs, so a production log
    becomes a faithful load test — the trace-replay methodology with the
    only trace 1996 actually had.
    """
    from repro.cgi.query_string import decode_pairs

    for entry in entries:
        path, _, query = entry.path.partition("?")
        parts = [p for p in path.split("/") if p]
        if len(parts) != 4 or parts[0] != "cgi-bin":
            continue
        _, _program, _macro, command = parts
        if command not in ("input", "report"):
            continue
        yield WorkloadRequest(command=command,
                              pairs=tuple(decode_pairs(query)))
