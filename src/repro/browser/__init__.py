"""Simulated Web client (browser) substrate — Section 2.1's user loop."""

from repro.browser.client import Browser
from repro.browser.page import Link, Page

__all__ = ["Browser", "Link", "Page"]
