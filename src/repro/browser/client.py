"""The simulated Web client — the user's half of Section 2.1.

"A user fires up a Web client (e.g., Mosaic, Netscape, WebExplorer) and
uses it to access a URL ... The user on viewing the resulting form can
start the process all over again by clicking on another hypertext link in
the current form."  :class:`Browser` reproduces that loop over any
:class:`~repro.http.inprocess.Transport`: fetch a URL, parse the page,
fill the forms, submit (GET or POST per the form's METHOD), follow
links and redirects.
"""

from __future__ import annotations

from typing import Optional

from repro.cgi.query_string import encode_pairs
from repro.errors import HttpError
from repro.html.forms import Form, SubmitControl
from repro.html.parser import parse_html
from repro.http.headers import Headers
from repro.http.inprocess import Transport
from repro.http.message import HttpRequest
from repro.http.urls import Url, join

from repro.browser.page import Link, Page

#: How many consecutive redirects the browser follows before giving up.
MAX_REDIRECTS = 5


class Browser:
    """Drives Web applications the way an end user did in 1996."""

    def __init__(self, transport: Transport, *,
                 base_url: str | Url = "http://localhost/"):
        self.transport = transport
        self.base_url = (base_url if isinstance(base_url, Url)
                         else Url.parse(str(base_url)))
        self.page: Optional[Page] = None
        self.history: list[Url] = []

    # -- navigation ---------------------------------------------------------

    def get(self, url: str | Url) -> Page:
        """Access a URL (step 1 of Section 2.1)."""
        resolved = self._resolve(url)
        request = HttpRequest(method="GET",
                              target=resolved.request_target,
                              headers=Headers())
        return self._perform(resolved, request)

    def follow(self, link: Link | str) -> Page:
        """Click a hyperlink on the current page."""
        page = self._require_page()
        if isinstance(link, str):
            link = page.link(link)
        return self.get(link.resolve(page.url))

    def submit(self, form: Form, *,
               click: Optional[str | SubmitControl] = None) -> Page:
        """Submit a (filled) form from the current page.

        GET forms put the pairs in the URL query string; POST forms send
        them form-urlencoded on the request body — the two CGI data paths
        of Figure 4.
        """
        page = self._require_page()
        pairs = form.submission_pairs(click)
        encoded = encode_pairs(pairs)
        action_url = join(page.url, form.action) if form.action else page.url
        if form.method == "POST":
            headers = Headers()
            headers.set("Content-Type",
                        "application/x-www-form-urlencoded")
            request = HttpRequest(
                method="POST", target=action_url.request_target,
                headers=headers, body=encoded.encode("utf-8"))
            return self._perform(action_url, request)
        target_url = action_url.with_query(encoded)
        request = HttpRequest(method="GET",
                              target=target_url.request_target,
                              headers=Headers())
        return self._perform(target_url, request)

    def back(self) -> Page:
        """Return to the previous page (re-fetches, as HTTP/1.0 did
        without a cache)."""
        if len(self.history) < 2:
            raise HttpError("no earlier page in history")
        self.history.pop()            # current page
        previous = self.history.pop()  # target (get() re-appends it)
        return self.get(previous)

    # -- internals ------------------------------------------------------------

    def _resolve(self, url: str | Url) -> Url:
        if isinstance(url, Url):
            return url
        text = str(url)
        if "://" in text:
            return Url.parse(text)
        base = self.page.url if self.page is not None else self.base_url
        return join(base, text)

    def _perform(self, url: Url, request: HttpRequest) -> Page:
        response = self.transport.fetch(url, request)
        redirects = 0
        while response.status in (301, 302) and redirects < MAX_REDIRECTS:
            location = response.headers.get("Location")
            if not location:
                break
            url = join(url, location)
            request = HttpRequest(method="GET", target=url.request_target,
                                  headers=Headers())
            response = self.transport.fetch(url, request)
            redirects += 1
        document = parse_html(response.text)
        self.page = Page.build(url, response, document)
        self.history.append(url)
        return self.page

    def _require_page(self) -> Page:
        if self.page is None:
            raise HttpError("browser has no current page")
        return self.page
