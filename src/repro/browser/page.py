"""A fetched, parsed Web page as the browser holds it."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.html.dom import Document, Element
from repro.html.forms import Form, extract_forms
from repro.html.render import render_text
from repro.http.message import HttpResponse
from repro.http.urls import Url, join


@dataclass
class Link:
    """A hyperlink found on a page."""

    text: str
    href: str

    def resolve(self, base: Url) -> Url:
        return join(base, self.href)


@dataclass
class Page:
    """One displayed page: DOM, forms and hyperlinks, plus provenance."""

    url: Url
    response: HttpResponse
    document: Document
    forms: list[Form] = field(default_factory=list)
    links: list[Link] = field(default_factory=list)

    @property
    def status(self) -> int:
        return self.response.status

    @property
    def title(self) -> str:
        return self.document.title

    @property
    def html(self) -> str:
        return self.response.text

    def render(self, *, width: int = 72) -> str:
        """The page as a text-mode browser would display it."""
        return render_text(self.document, width=width)

    # -- lookups the browser API builds on ---------------------------------

    def form(self, index: int = 0) -> Form:
        return self.forms[index]

    def link(self, text_or_href: str) -> Link:
        """Find a link by (substring of) its anchor text or exact href."""
        for link in self.links:
            if link.href == text_or_href:
                return link
        for link in self.links:
            if text_or_href in link.text:
                return link
        raise LookupError(f"no link matching {text_or_href!r} on page")

    @classmethod
    def build(cls, url: Url, response: HttpResponse,
              document: Document) -> "Page":
        links = [
            Link(text=" ".join(a.get_text().split()), href=a.get("href"))
            for a in document.find_all("a") if a.get("href")
        ]
        return cls(url=url, response=response, document=document,
                   forms=extract_forms(document), links=links)

    def find_all(self, *tags: str) -> list[Element]:
        return self.document.find_all(*tags)
